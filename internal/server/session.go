package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/wire"
)

var (
	errSessionClosed = errors.New("server: session closed")
	errSlowConsumer  = errors.New("server: slow consumer")
)

// session is one connection's server-side state: a reader goroutine
// dispatching pipelined requests in order, a writer goroutine owning the
// socket, and one pump goroutine per live subscription.
type session struct {
	srv  *Server
	conn net.Conn

	out        chan wire.Frame // all outbound frames
	dead       chan struct{}   // closed by kill: stop everything now
	flushc     chan struct{}   // closed by the reader on exit: flush and close
	writerDone chan struct{}

	killOnce sync.Once
	draining sync.Once

	mu         sync.Mutex
	clientID   string
	dedup      *dedupCache
	subs       map[uint64]*serverSub
	subsClosed bool
}

func newSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:        srv,
		conn:       conn,
		out:        make(chan wire.Frame, srv.cfg.OutQueue),
		dead:       make(chan struct{}),
		flushc:     make(chan struct{}),
		writerDone: make(chan struct{}),
		subs:       map[uint64]*serverSub{},
	}
}

// run is the session main loop; it returns when the connection is done.
func (s *session) run() {
	go s.writeLoop()
	dec := wire.NewDecoder(bufio.NewReaderSize(s.conn, 64<<10), s.srv.cfg.MaxPayload)
	for {
		f, err := dec.Next()
		if err != nil {
			// EOF, the drain deadline, a kill, or a protocol violation: in
			// every case the session winds down.  Protocol violations get a
			// best-effort error frame first.
			if errors.Is(err, wire.ErrBadFrame) || errors.Is(err, wire.ErrTooLarge) {
				s.tryEnqueue(mustEncode(wire.OpError, 0, wire.ErrorResp{Msg: err.Error()}))
			}
			break
		}
		s.srv.m.framesIn.Inc()
		s.handle(f)
	}
	s.closeSubs("")
	close(s.flushc)
	<-s.writerDone
}

// beginDrain stops the reader after its current request: subsequent reads
// fail immediately, the reader exits, and the writer flushes the queue
// before closing.  Responses already computed still reach the client.
func (s *session) beginDrain() {
	s.draining.Do(func() {
		s.conn.SetReadDeadline(time.Now())
	})
}

// kill tears the session down without flushing.
func (s *session) kill(reason string) {
	s.killOnce.Do(func() {
		_ = reason
		close(s.dead)
		s.conn.Close()
	})
}

// slowConsumer records and disconnects a session that cannot keep up.
func (s *session) slowConsumer() {
	s.srv.m.slowConsumers.Inc()
	s.kill("slow consumer")
}

// writeLoop owns conn writes.  Every write carries the WriteBudget
// deadline, so a stalled peer cannot hold the goroutine hostage.
func (s *session) writeLoop() {
	defer close(s.writerDone)
	for {
		select {
		case f := <-s.out:
			if !s.write(f) {
				return
			}
		case <-s.dead:
			return
		case <-s.flushc:
			// Reader exited: flush what is queued, then close.
			for {
				select {
				case f := <-s.out:
					if !s.write(f) {
						return
					}
				case <-s.dead:
					return
				default:
					s.conn.Close()
					return
				}
			}
		}
	}
}

func (s *session) write(f wire.Frame) bool {
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteBudget))
	if err := wire.WriteFrame(s.conn, f); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			s.slowConsumer()
		} else {
			s.kill(err.Error())
		}
		return false
	}
	s.srv.m.framesOut.Inc()
	return true
}

// enqueue queues an outbound frame, waiting at most WriteBudget; a full
// queue past the budget marks the session a slow consumer.
func (s *session) enqueue(f wire.Frame) error {
	select {
	case s.out <- f:
		return nil
	case <-s.dead:
		return errSessionClosed
	default:
	}
	t := time.NewTimer(s.srv.cfg.WriteBudget)
	defer t.Stop()
	select {
	case s.out <- f:
		return nil
	case <-s.dead:
		return errSessionClosed
	case <-t.C:
		s.slowConsumer()
		return errSlowConsumer
	}
}

// tryEnqueue queues a frame only if there is room right now.
func (s *session) tryEnqueue(f wire.Frame) {
	select {
	case s.out <- f:
	default:
	}
}

// ---- request dispatch ----

func mustEncode(op wire.Opcode, id uint64, payload any) wire.Frame {
	f, err := wire.Encode(op, id, payload)
	if err != nil {
		// Payloads are our own types; failure to marshal them is a bug.
		panic(err)
	}
	return f
}

func errFrame(id uint64, err error) wire.Frame {
	return mustEncode(wire.OpError, id, wire.ErrorResp{Msg: err.Error()})
}

// handle executes one request and enqueues its response, recording the
// per-opcode latency and the in-flight gauge.
func (s *session) handle(f wire.Frame) {
	m := s.srv.m
	m.inflight.Add(1)
	t0 := m.reg.Start()
	resp := s.dispatch(f)
	m.opHist(f.Op).Since(t0)
	m.inflight.Add(-1)
	if resp.Op == wire.OpError {
		m.errors.Inc()
	}
	_ = s.enqueue(resp)
}

// dispatch routes one request.  Mutating opcodes pass through the client's
// idempotence cache when a Hello established one.
func (s *session) dispatch(f wire.Frame) wire.Frame {
	switch f.Op {
	case wire.OpUpdateBatch, wire.OpAdvance, wire.OpSnapshotLoad:
		s.mu.Lock()
		cache := s.dedup
		s.mu.Unlock()
		if cache == nil {
			return s.execute(f)
		}
		e, replay := cache.begin(f.ID)
		if replay {
			s.srv.m.dedupHits.Inc()
			<-e.done
			return e.frame
		}
		resp := s.execute(f)
		e.finish(resp)
		return resp
	default:
		return s.execute(f)
	}
}

func (s *session) execute(f wire.Frame) wire.Frame {
	switch f.Op {
	case wire.OpHello:
		return s.handleHello(f)
	case wire.OpPing:
		return mustEncode(wire.OpResult, f.ID, nil)
	case wire.OpQuery:
		return s.handleQuery(f)
	case wire.OpUpdateBatch:
		return s.handleUpdateBatch(f)
	case wire.OpAdvance:
		return s.handleAdvance(f)
	case wire.OpObjects:
		return s.handleObjects(f)
	case wire.OpSnapshotSave:
		return s.handleSnapshotSave(f)
	case wire.OpSnapshotLoad:
		return s.handleSnapshotLoad(f)
	case wire.OpSubscribe:
		return s.handleSubscribe(f)
	case wire.OpUnsubscribe:
		return s.handleUnsubscribe(f)
	default:
		return errFrame(f.ID, fmt.Errorf("server: %s is not a request opcode", f.Op))
	}
}

func (s *session) handleHello(f wire.Frame) wire.Frame {
	var req wire.HelloReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return errFrame(f.ID, err)
	}
	s.mu.Lock()
	s.clientID = req.ClientID
	s.dedup = s.srv.dedupFor(req.ClientID)
	s.mu.Unlock()
	return mustEncode(wire.OpResult, f.ID, wire.HelloResp{Server: s.srv.cfg.Name, Version: wire.ProtocolVersion})
}

func (s *session) handleQuery(f wire.Frame) wire.Frame {
	var req wire.QueryReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return errFrame(f.ID, err)
	}
	st := s.srv.state()
	opts := s.srv.cfg.BaseOptions
	if req.Horizon > 0 {
		opts.Horizon = req.Horizon
	}
	rows, err := st.eng.Query(req.Src, opts)
	if err != nil {
		return errFrame(f.ID, err)
	}
	evRows := make([][]eval.Val, len(rows))
	for i, r := range rows {
		evRows[i] = r
	}
	return mustEncode(wire.OpResult, f.ID, wire.QueryResp{Now: st.db.Now(), Rows: wire.FromRows(evRows)})
}

func (s *session) handleUpdateBatch(f wire.Frame) wire.Frame {
	var req wire.UpdateBatchReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return errFrame(f.ID, err)
	}
	st := s.srv.state()
	t0 := s.srv.m.reg.Start()
	applied := 0
	var failure error
	for _, op := range req.Ops {
		if err := applyOp(st, op); err != nil {
			failure = fmt.Errorf("op %d (%s %s): %w", applied, op.Op, op.ID, err)
			break
		}
		applied++
	}
	s.srv.m.applyNs.Since(t0)
	if failure != nil {
		return errFrame(f.ID, failure)
	}
	return mustEncode(wire.OpResult, f.ID, wire.UpdateBatchResp{
		Applied: applied, Now: st.db.Now(), Version: st.db.Version(),
	})
}

// applyOp applies one explicit update.  Continuous-query maintenance runs
// synchronously inside the database call (the engine subscribes to
// updates), so when the batch response goes out every registered query
// already reflects it.
func applyOp(st *state, op wire.UpdateOp) error {
	switch op.Op {
	case wire.OpSetMotion:
		return st.db.SetMotion(most.ObjectID(op.ID), geom.Vector{X: op.VX, Y: op.VY})
	case wire.OpSetStatic:
		if op.Value == nil {
			return errors.New("set_static without value")
		}
		v, err := mostValue(*op.Value)
		if err != nil {
			return err
		}
		return st.db.SetStatic(most.ObjectID(op.ID), op.Attr, v)
	case wire.OpDelete:
		return st.db.Delete(most.ObjectID(op.ID))
	case wire.OpInsert:
		o, err := most.DecodeObjectJSON(st.db, op.Object)
		if err != nil {
			return err
		}
		return st.db.Insert(o)
	default:
		return fmt.Errorf("unknown update op %q", op.Op)
	}
}

func mostValue(v wire.Value) (most.Value, error) {
	ev := v.Val()
	switch ev.Kind {
	case eval.ValNum:
		return most.Float(ev.Num), nil
	case eval.ValStr:
		return most.Str(ev.Str), nil
	case eval.ValBool:
		return most.Bool(ev.Bool), nil
	case eval.ValNull:
		return most.Null(), nil
	default:
		return most.Value{}, fmt.Errorf("value kind %d has no static-attribute form", ev.Kind)
	}
}

func (s *session) handleAdvance(f wire.Frame) wire.Frame {
	var req wire.AdvanceReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return errFrame(f.ID, err)
	}
	if req.D < 0 {
		return errFrame(f.ID, errors.New("the clock cannot run backwards"))
	}
	now := s.srv.state().db.Advance(req.D)
	return mustEncode(wire.OpResult, f.ID, wire.AdvanceResp{Now: now})
}

func (s *session) handleObjects(f wire.Frame) wire.Frame {
	var req wire.ObjectsReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return errFrame(f.ID, err)
	}
	st := s.srv.state()
	now := st.db.Now()
	objs := st.db.Objects(req.Class)
	resp := wire.ObjectsResp{Now: now, Objects: make([]wire.ObjectInfo, 0, len(objs))}
	for _, o := range objs {
		info := wire.ObjectInfo{ID: string(o.ID()), Class: o.Class().Name()}
		if p, err := o.PositionAt(now); err == nil {
			info.HasPos, info.X, info.Y = true, p.X, p.Y
		}
		resp.Objects = append(resp.Objects, info)
	}
	return mustEncode(wire.OpResult, f.ID, resp)
}

func (s *session) handleSnapshotSave(f wire.Frame) wire.Frame {
	data, err := s.srv.state().db.SnapshotJSON()
	if err != nil {
		return errFrame(f.ID, err)
	}
	return mustEncode(wire.OpResult, f.ID, wire.SnapshotResp{Data: data})
}

func (s *session) handleSnapshotLoad(f wire.Frame) wire.Frame {
	var req wire.SnapshotLoadReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return errFrame(f.ID, err)
	}
	db, err := most.LoadSnapshotJSON(req.Data)
	if err != nil {
		return errFrame(f.ID, err)
	}
	s.srv.swapState(db)
	return mustEncode(wire.OpResult, f.ID, wire.SnapshotLoadResp{Now: db.Now(), Objects: db.Count()})
}

// ---- subscriptions ----

// serverSub is one continuous-query subscription: the engine's maintenance
// callback deposits the newest answer in the mailbox (latest/seq) and sets
// the dirty flag; the pump converts and sends.  Rounds that arrive while
// the pump or connection is busy coalesce — the newest answer supersedes
// anything unsent.
type serverSub struct {
	id uint64
	cq *query.Continuous

	mu     sync.Mutex
	latest *eval.Relation
	seq    uint64

	dirty chan struct{} // capacity 1
	stop  chan struct{}
}

// onAnswer runs on the updater's commit path: store and signal, never
// block.
func (sub *serverSub) onAnswer(rel *eval.Relation) {
	sub.mu.Lock()
	sub.latest = rel
	sub.seq++
	sub.mu.Unlock()
	select {
	case sub.dirty <- struct{}{}:
	default:
	}
}

// pump streams mailbox contents to the session until the subscription or
// session ends.
func (s *session) pump(sub *serverSub) {
	var sent uint64
	for {
		select {
		case <-sub.stop:
			return
		case <-s.dead:
			return
		case <-sub.dirty:
			sub.mu.Lock()
			rel, seq := sub.latest, sub.seq
			sub.mu.Unlock()
			if seq == sent || rel == nil {
				continue
			}
			s.srv.m.notifies.Inc()
			if seq > sent+1 {
				s.srv.m.notifyCoalesced.Add(int64(seq - sent - 1))
			}
			n := wire.Notify{SubID: sub.id, Seq: seq, Answer: wire.FromRelation(rel)}
			if err := s.enqueue(mustEncode(wire.OpNotify, 0, n)); err != nil {
				return
			}
			sent = seq
		}
	}
}

func (s *session) handleSubscribe(f wire.Frame) wire.Frame {
	var req wire.SubscribeReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return errFrame(f.ID, err)
	}
	st := s.srv.state()
	q, err := ftl.Parse(req.Src)
	if err != nil {
		return errFrame(f.ID, err)
	}
	opts := s.srv.cfg.BaseOptions
	if req.Horizon > 0 {
		opts.Horizon = req.Horizon
	}
	cq, err := st.eng.Continuous(q, opts)
	if err != nil {
		return errFrame(f.ID, err)
	}
	sub := &serverSub{
		id:    s.srv.nextSub.Add(1),
		cq:    cq,
		dirty: make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	if err := cq.Subscribe(sub.onAnswer); err != nil {
		cq.Cancel()
		return errFrame(f.ID, err)
	}
	s.mu.Lock()
	if s.subsClosed {
		s.mu.Unlock()
		cq.Cancel()
		return errFrame(f.ID, errSessionClosed)
	}
	s.subs[sub.id] = sub
	s.mu.Unlock()
	s.srv.m.subscriptions.Add(1)
	go s.pump(sub)
	// The initial answer is read after the listener is live, so any update
	// racing the registration is covered either here or by a notify.
	rel, err := cq.Answer()
	if err != nil {
		s.removeSub(sub.id, "", false)
		return errFrame(f.ID, err)
	}
	return mustEncode(wire.OpResult, f.ID, wire.SubscribeResp{
		SubID: sub.id, Now: st.db.Now(), Answer: wire.FromRelation(rel),
	})
}

func (s *session) handleUnsubscribe(f wire.Frame) wire.Frame {
	var req wire.UnsubscribeReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return errFrame(f.ID, err)
	}
	if !s.removeSub(req.SubID, "", false) {
		return errFrame(f.ID, fmt.Errorf("no subscription %d", req.SubID))
	}
	return mustEncode(wire.OpResult, f.ID, nil)
}

// removeSub cancels one subscription; with push it also notifies the
// client via OpSubClosed.
func (s *session) removeSub(id uint64, reason string, push bool) bool {
	s.mu.Lock()
	sub, ok := s.subs[id]
	if ok {
		delete(s.subs, id)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	sub.cq.Cancel()
	close(sub.stop)
	s.srv.m.subscriptions.Add(-1)
	if push {
		s.tryEnqueue(mustEncode(wire.OpSubClosed, 0, wire.SubClosed{SubID: id, Reason: reason}))
	}
	return true
}

// closeSubs tears down every subscription; a non-empty reason is pushed to
// the client (used when the database is replaced under live sessions).
func (s *session) closeSubs(reason string) {
	s.mu.Lock()
	subs := make([]*serverSub, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subs = map[uint64]*serverSub{}
	if reason == "" {
		// Terminal teardown: refuse new subscriptions from here on.
		s.subsClosed = true
	}
	s.mu.Unlock()
	for _, sub := range subs {
		sub.cq.Cancel()
		close(sub.stop)
		s.srv.m.subscriptions.Add(-1)
		if reason != "" {
			s.tryEnqueue(mustEncode(wire.OpSubClosed, 0, wire.SubClosed{SubID: sub.id, Reason: reason}))
		}
	}
}
