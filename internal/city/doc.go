// Package city generates a reproducible city-scale moving-object
// scenario: a grid road network partitioned into districts, points of
// interest placed on road edges, bus lines looping their district's
// perimeter, and a population of cars that depart on a rush-hour
// schedule, follow roads, and re-route at intersections.  It layers on
// the primitives of internal/workload: the scenario compiles to a
// *most.Database of parked objects plus a sorted []workload.UpdateEvent
// motion-vector schedule that workload.Apply (or a network client)
// replays.
//
// The package also derives a query catalog from the generated geometry
// (Catalog): range-in-district, proximity-to-POI, trajectory-window,
// nearest-at-time candidate, corridor, and follow-an-object templates,
// each rendered as FTL source over the named region polygons the city
// exports.  The catalog is what the application-centric benchmark
// (experiments.CityBench, `mostbench -city`) and the differential
// correctness suites instantiate.
//
// # Seeding contract
//
// Generation is a pure function of the Spec.  All randomness flows from
// Spec.Seed through fixed derived streams (layout, fleet, schedule, and
// catalog each consume an independent rand.Source whose seed is an
// affine function of Spec.Seed), and iteration never ranges over maps,
// so:
//
//   - the same Spec produces a byte-identical City — identical district
//     and POI geometry, identical car/bus fleets and routes, and an
//     identical update-event schedule, in identical order;
//   - the derived Catalog is byte-identical too — same template names,
//     same FTL sources, same region polygons;
//   - City.Fingerprint and Catalog.Fingerprint hash exactly that state,
//     so two generations can be compared with a string equality check
//     (see TestCityDeterminism).
//
// Changing any Spec field (including the defaults applied by
// withDefaults) or the generator code itself may change the output; the
// contract is bit-reproducibility for a fixed (code version, Spec) pair,
// which is what the benchmark reports and regression suites need.
package city
