package most

import (
	"testing"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

func vehicleClass(t *testing.T) *Class {
	t.Helper()
	return MustClass("Vehicles", true,
		AttrDef{Name: "PRICE", Kind: Static},
		AttrDef{Name: "FUEL", Kind: Dynamic},
	)
}

func TestValueBasics(t *testing.T) {
	if !Null().IsNull() || Float(1).IsNull() {
		t.Error("IsNull wrong")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("AsFloat wrong")
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Error("string AsFloat should fail")
	}
	if Int(3) != Float(3) {
		t.Error("Int should equal Float")
	}
	cmp := []struct {
		a, b Value
		want int
	}{
		{Float(1), Float(2), -1},
		{Float(2), Float(2), 0},
		{Str("b"), Str("a"), 1},
		{Bool(false), Bool(true), -1},
		{Null(), Float(0), -1},
	}
	for _, c := range cmp {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if Float(1.5).String() != "1.5" || Str("hi").String() != "hi" || Bool(true).String() != "true" || Null().String() != "NULL" {
		t.Error("String rendering wrong")
	}
}

func TestClassDeclaration(t *testing.T) {
	c := vehicleClass(t)
	if c.Name() != "Vehicles" || !c.Spatial() {
		t.Fatal("class metadata wrong")
	}
	// Spatial classes get position attributes implicitly.
	for _, name := range []string{XPosition, YPosition, ZPosition} {
		def, ok := c.Attr(name)
		if !ok || def.Kind != Dynamic {
			t.Errorf("missing implicit dynamic attribute %s", name)
		}
	}
	if def, _ := c.Attr("PRICE"); def.Kind != Static {
		t.Error("PRICE should be static")
	}
	if _, ok := c.Attr("NOPE"); ok {
		t.Error("unknown attribute found")
	}
	if _, err := NewClass("", false); err == nil {
		t.Error("empty class name should fail")
	}
	if _, err := NewClass("C", false, AttrDef{Name: "A"}, AttrDef{Name: "A"}); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := NewClass("C", true, AttrDef{Name: XPosition}); err == nil {
		t.Error("redeclaring implicit position should fail")
	}
}

func TestObjectRevisions(t *testing.T) {
	c := vehicleClass(t)
	o, err := NewObject("car1", c)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := o.WithStatic("PRICE", Float(90))
	if err != nil {
		t.Fatal(err)
	}
	// Old revision unchanged (immutability).
	if v, _ := o.Static("PRICE"); !v.IsNull() {
		t.Error("original revision mutated")
	}
	if v, _ := o2.Static("PRICE"); v != Float(90) {
		t.Error("new revision missing value")
	}
	// Kind mismatches are rejected.
	if _, err := o.WithStatic("FUEL", Float(1)); err == nil {
		t.Error("setting dynamic attr as static should fail")
	}
	if _, err := o.WithDynamic("PRICE", motion.Static(1)); err == nil {
		t.Error("setting static attr as dynamic should fail")
	}
	if _, err := o.Static("MISSING"); err == nil {
		t.Error("unknown attribute should fail")
	}
	// Position plumbing.
	o3, err := o2.WithPosition(motion.MovingFrom(geom.Point{X: 1, Y: 2}, geom.Vector{X: 3, Y: 0}, 0))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := o3.PositionAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if pt != (geom.Point{X: 7, Y: 2}) {
		t.Errorf("PositionAt = %v", pt)
	}
	// ValueAt dispatches on kind.
	if v, _ := o3.ValueAt("PRICE", 5); v != Float(90) {
		t.Error("static ValueAt wrong")
	}
	if v, _ := o3.ValueAt(XPosition, 2); v != Float(7) {
		t.Errorf("dynamic ValueAt = %v", v)
	}
}

func newTestDB(t *testing.T) (*Database, *Class) {
	t.Helper()
	db := NewDatabase()
	c := vehicleClass(t)
	if err := db.DefineClass(c); err != nil {
		t.Fatal(err)
	}
	return db, c
}

func insertCar(t *testing.T, db *Database, c *Class, id ObjectID, p geom.Point, v geom.Vector) {
	t.Helper()
	o, err := NewObject(id, c)
	if err != nil {
		t.Fatal(err)
	}
	o, err = o.WithPosition(motion.MovingFrom(p, v, db.Now()))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(o); err != nil {
		t.Fatal(err)
	}
}

func TestDatabaseClock(t *testing.T) {
	db := NewDatabase()
	if db.Now() != 0 {
		t.Fatal("clock should start at 0")
	}
	if db.Tick() != 1 || db.Advance(9) != 10 {
		t.Fatal("clock arithmetic wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative advance should panic")
		}
	}()
	db.Advance(-1)
}

func TestDatabaseCRUD(t *testing.T) {
	db, c := newTestDB(t)
	insertCar(t, db, c, "a", geom.Point{}, geom.Vector{X: 1})
	insertCar(t, db, c, "b", geom.Point{X: 5}, geom.Vector{})

	if db.Count() != 2 {
		t.Fatalf("Count = %d", db.Count())
	}
	if got := db.Objects("Vehicles"); len(got) != 2 || got[0].ID() != "a" {
		t.Fatalf("Objects = %v", got)
	}
	if got := db.Objects(""); len(got) != 2 {
		t.Fatalf("all Objects = %v", got)
	}
	// Duplicate insert fails.
	o, _ := NewObject("a", c)
	if err := db.Insert(o); err == nil {
		t.Error("duplicate insert should fail")
	}
	// Undefined class fails.
	other := MustClass("Ghost", false)
	g, _ := NewObject("g", other)
	if err := db.Insert(g); err == nil {
		t.Error("insert with undefined class should fail")
	}
	if err := db.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("a"); err == nil {
		t.Error("double delete should fail")
	}
	if _, ok := db.Get("a"); ok {
		t.Error("deleted object still visible")
	}
	if got := db.Objects("Vehicles"); len(got) != 1 || got[0].ID() != "b" {
		t.Fatalf("Objects after delete = %v", got)
	}
}

func TestDynamicAttributeQueryDependsOnTime(t *testing.T) {
	// §2.1: "the answer may be different for time-points t1 and t2, even
	// though the database has not been explicitly updated between them."
	db, c := newTestDB(t)
	insertCar(t, db, c, "car", geom.Point{}, geom.Vector{X: 5})
	o, _ := db.Get("car")
	v1, _ := o.ValueAt(XPosition, db.Now())
	db.Advance(3)
	o2, _ := db.Get("car")
	v2, _ := o2.ValueAt(XPosition, db.Now())
	if v1 != Float(0) || v2 != Float(15) {
		t.Fatalf("v1=%v v2=%v", v1, v2)
	}
	if len(db.LogSince(1)) != 0 {
		t.Fatal("no explicit updates should have been logged")
	}
}

func TestSetMotionContinuity(t *testing.T) {
	db, c := newTestDB(t)
	insertCar(t, db, c, "car", geom.Point{}, geom.Vector{X: 2})
	db.Advance(5) // car is now at x=10
	if err := db.SetMotion("car", geom.Vector{Y: 1}); err != nil {
		t.Fatal(err)
	}
	o, _ := db.Get("car")
	p, _ := o.PositionAt(5)
	if p != (geom.Point{X: 10}) {
		t.Fatalf("position discontinuous after SetMotion: %v", p)
	}
	p, _ = o.PositionAt(8)
	if p != (geom.Point{X: 10, Y: 3}) {
		t.Fatalf("position after retarget = %v", p)
	}
	if err := db.SetMotion("ghost", geom.Vector{}); err == nil {
		t.Error("SetMotion on missing object should fail")
	}
}

func TestUpdateFunctionAndSubattributeQuery(t *testing.T) {
	db, c := newTestDB(t)
	insertCar(t, db, c, "car", geom.Point{}, geom.Vector{X: 5})
	db.Advance(1)
	if err := db.UpdateFunction("car", XPosition, motion.Linear(7)); err != nil {
		t.Fatal(err)
	}
	o, _ := db.Get("car")
	dyn, err := o.Dynamic(XPosition)
	if err != nil {
		t.Fatal(err)
	}
	// Sub-attributes are independently queryable (§2.1).
	if dyn.Value != 5 || dyn.UpdateTime != 1 || !dyn.Function.Equal(motion.Linear(7)) {
		t.Fatalf("sub-attributes = %+v", dyn)
	}
	if err := db.UpdateFunction("car", "NOPE", motion.Linear(1)); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestListeners(t *testing.T) {
	db, c := newTestDB(t)
	var events []Update
	db.Subscribe(func(u Update) { events = append(events, u) })
	insertCar(t, db, c, "car", geom.Point{}, geom.Vector{})
	if err := db.SetStatic("car", "PRICE", Float(50)); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("car"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Kind != UpdateInsert || events[1].Kind != UpdateStatic || events[2].Kind != UpdateDelete {
		t.Fatalf("event kinds = %v %v %v", events[0].Kind, events[1].Kind, events[2].Kind)
	}
	if events[1].Attr != "PRICE" || events[1].Before == nil || events[1].After == nil {
		t.Fatalf("static update event = %+v", events[1])
	}
}

func TestHistoryReconstruction(t *testing.T) {
	// Reproduces the paper's §2.3 speed-doubling setup: function 5t at time
	// 0, updated to 7t at time 1, to 10t at time 2.
	db, c := newTestDB(t)
	insertCar(t, db, c, "o", geom.Point{}, geom.Vector{X: 5})
	db.Advance(1)
	if err := db.UpdateFunction("o", XPosition, motion.Linear(7)); err != nil {
		t.Fatal(err)
	}
	db.Advance(1)
	if err := db.UpdateFunction("o", XPosition, motion.Linear(10)); err != nil {
		t.Fatal(err)
	}
	h := db.History()
	if h.Now() != 2 {
		t.Fatalf("Now = %d", h.Now())
	}
	// Past speeds are reconstructed from the log.
	wantSpeed := map[temporal.Tick]float64{0: 5, 1: 7, 2: 10, 5: 10}
	for tick, want := range wantSpeed {
		o, ok := h.RevisionAt("o", tick)
		if !ok {
			t.Fatalf("no revision at %d", tick)
		}
		dyn, _ := o.Dynamic(XPosition)
		if got := dyn.Function.SlopeAt(0); got != want {
			t.Errorf("speed at %d = %v, want %v", tick, got, want)
		}
	}
	// Values along the actual history: x(0)=0, x(1)=5, x(2)=12, x(3)=22.
	for tick, want := range map[temporal.Tick]float64{0: 0, 1: 5, 2: 12, 3: 22} {
		v, err := h.ValueAt("o", XPosition, tick)
		if err != nil {
			t.Fatal(err)
		}
		if v != Float(want) {
			t.Errorf("x(%d) = %v, want %v", tick, v, want)
		}
	}
	// Before the insert there is no revision.
	db2, c2 := newTestDB(t)
	db2.Advance(5)
	insertCar(t, db2, c2, "late", geom.Point{}, geom.Vector{})
	h2 := db2.History()
	if _, ok := h2.RevisionAt("late", 3); ok {
		t.Error("object should not exist before insert")
	}
	if ids := h2.LiveIDs(3); len(ids) != 0 {
		t.Errorf("LiveIDs(3) = %v", ids)
	}
	if ids := h2.LiveIDs(5); len(ids) != 1 || ids[0] != "late" {
		t.Errorf("LiveIDs(5) = %v", ids)
	}
}

func TestHistoryAfterDelete(t *testing.T) {
	db, c := newTestDB(t)
	insertCar(t, db, c, "o", geom.Point{}, geom.Vector{})
	db.Advance(2)
	if err := db.Delete("o"); err != nil {
		t.Fatal(err)
	}
	db.Advance(1)
	h := db.History()
	if _, ok := h.RevisionAt("o", 1); !ok {
		t.Error("object should exist at tick 1")
	}
	if _, ok := h.RevisionAt("o", 2); ok {
		t.Error("object should be deleted at tick 2")
	}
	if _, err := h.ValueAt("o", XPosition, 2); err == nil {
		t.Error("ValueAt on deleted object should fail")
	}
}

func TestSpatialMethods(t *testing.T) {
	db, c := newTestDB(t)
	insertCar(t, db, c, "a", geom.Point{X: 5, Y: 5}, geom.Vector{X: 1})
	insertCar(t, db, c, "b", geom.Point{X: 5, Y: 9}, geom.Vector{})
	a, _ := db.Get("a")
	b, _ := db.Get("b")

	sq := geom.RectPolygon(0, 0, 10, 10)
	if in, _ := Inside(a, sq, 0); !in {
		t.Error("a should be inside at t=0")
	}
	if in, _ := Inside(a, sq, 6); in {
		t.Error("a should be outside at t=6 (x=11)")
	}
	if out, _ := Outside(a, sq, 6); !out {
		t.Error("Outside should be the negation")
	}
	if d, _ := DistBetween(a, b, 0); d != 4 {
		t.Errorf("DIST = %v, want 4", d)
	}
	if ok, _ := WithinASphere(1.9, 0, a, b); ok {
		t.Error("radius 1.9 should not enclose points 4 apart")
	}
	if ok, _ := WithinASphere(2, 0, a, b); !ok {
		t.Error("radius 2 should enclose points 4 apart (diameter 4)")
	}
	if ok, _ := WithinASphere(1, 0); !ok {
		t.Error("no objects should trivially enclose")
	}
	// Non-spatial class errors.
	nc := MustClass("Plain", false, AttrDef{Name: "A", Kind: Static})
	if err := db.DefineClass(nc); err != nil {
		t.Fatal(err)
	}
	p, _ := NewObject("p", nc)
	if err := db.Insert(p); err != nil {
		t.Fatal(err)
	}
	if _, err := Inside(p, sq, 0); err == nil {
		t.Error("Inside on non-spatial object should fail")
	}
	if _, err := WithinASphere(1, 0, a, p); err == nil {
		t.Error("WithinASphere with non-spatial object should fail")
	}
}
