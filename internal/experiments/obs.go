package experiments

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/workload"
)

// liveReg, when set via Instrument, is attached to every engine and
// database the experiment builders construct, so `mostbench -http`
// serves live metrics at /obs while the tables regenerate.  ObsBench
// itself does not use it: its whole point is to control attachment.
var liveReg atomic.Pointer[obs.Registry]

// Instrument attaches reg to the engines and databases built by
// subsequent experiment runs.  Pass nil to detach.
func Instrument(reg *obs.Registry) { liveReg.Store(reg) }

// newEngine builds an engine for an experiment, attaching the live
// registry when one is set.
func newEngine(db *most.Database) *query.Engine {
	e := query.NewEngine(db)
	if r := liveReg.Load(); r != nil {
		db.Instrument(r)
		e.Instrument(r)
	}
	return e
}

// ObsResult is one row of the observability-overhead benchmark: the
// parallel-evaluation query from ParallelBench run with instrumentation
// detached and attached.
type ObsResult struct {
	Objects     int     `json:"objects"`
	DisabledNs  int64   `json:"disabled_ns"`
	EnabledNs   int64   `json:"enabled_ns"`
	OverheadPct float64 `json:"overhead_pct"`
}

// ObsReport is the payload mostbench -obs writes to BENCH_obs.json.  The
// embedded Snapshot comes from a small fully-instrumented scenario that
// exercises all three query types, so the file doubles as a schema example
// of the /obs endpoint.
type ObsReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Results    []ObsResult  `json:"results"`
	Snapshot   obs.Snapshot `json:"snapshot"`
}

// ObsBench measures the instrumentation overhead of the observability layer
// on the parallel benchmark query.  Each fleet size is timed with the
// engine and database uninstrumented, then again with a live registry
// attached; the claim locked in by the driver is that the enabled run costs
// at most a few percent (the hooks are one atomic load plus a nil branch
// when disabled, and lock-free counter/histogram updates when enabled).
func ObsBench(quick bool) *ObsReport {
	sizes := []int{1000, 10000}
	reps := 5
	if quick {
		sizes = []int{1000}
		reps = 3
	}
	rep := &ObsReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, n := range sizes {
		db, err := workload.Fleet(workload.FleetSpec{
			N:        n,
			Region:   geom.Rect{Max: geom.Point{X: 1000, Y: 1000}},
			MaxSpeed: 3,
			Seed:     7,
		})
		if err != nil {
			panic(err)
		}
		e := query.NewEngine(db)
		q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`)
		opts := query.Options{
			Horizon:     200,
			Regions:     map[string]geom.Polygon{"P": geom.RectPolygon(200, 200, 600, 600)},
			Parallelism: -1,
		}
		eval := func() {
			if _, err := e.InstantaneousRelation(q, opts); err != nil {
				panic(err)
			}
		}
		reg := obs.New()
		// Interleave detached and attached measurements (min of reps each)
		// so cache and allocator warm-up is shared fairly between the two.
		runtime.GC()
		eval() // warm caches
		var disabled, enabled time.Duration
		for i := 0; i < reps; i++ {
			e.Instrument(nil)
			db.Instrument(nil)
			if d := timeOnce(eval); disabled == 0 || d < disabled {
				disabled = d
			}
			e.Instrument(reg)
			db.Instrument(reg)
			if d := timeOnce(eval); enabled == 0 || d < enabled {
				enabled = d
			}
		}
		e.Instrument(nil)
		db.Instrument(nil)
		rep.Results = append(rep.Results, ObsResult{
			Objects:     n,
			DisabledNs:  disabled.Nanoseconds(),
			EnabledNs:   enabled.Nanoseconds(),
			OverheadPct: (float64(enabled) - float64(disabled)) / float64(disabled) * 100,
		})
	}
	rep.Snapshot = obsDemoSnapshot()
	return rep
}

// timeOnce times a single run.  ObsBench keeps the minimum over reps runs:
// minimum-of-N is the standard estimator for an overhead comparison, since
// scheduler noise only ever adds time.
func timeOnce(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// obsDemoSnapshot runs a small fully-instrumented scenario — indexed
// instantaneous text query, continuous query reevaluated by a motion
// update, persistent query over the logged history — and returns the
// resulting registry snapshot.  All three query-type span trees appear in
// Traces.
func obsDemoSnapshot() obs.Snapshot {
	db, err := workload.Fleet(workload.FleetSpec{
		N:        50,
		Region:   geom.Rect{Max: geom.Point{X: 1000, Y: 1000}},
		MaxSpeed: 3,
		Seed:     11,
	})
	if err != nil {
		panic(err)
	}
	reg := obs.New()
	db.Instrument(reg)
	e := query.NewEngine(db)
	e.Instrument(reg)

	ix := index.NewMotionIndex(0, 256)
	ix.Instrument(reg)
	snap := db.Snapshot()
	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		o := snap[most.ObjectID(id)]
		pos, perr := o.Position()
		if perr != nil {
			continue
		}
		if ierr := ix.Insert(o.ID(), pos); ierr != nil {
			panic(ierr)
		}
	}

	opts := query.Options{
		Horizon:     100,
		Regions:     map[string]geom.Polygon{"P": geom.RectPolygon(200, 200, 600, 600)},
		MotionIndex: ix,
	}
	if _, err := e.Query(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`, opts); err != nil {
		panic(err)
	}
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`)
	cq, err := e.Continuous(q, opts)
	if err != nil {
		panic(err)
	}
	pq, err := e.Persistent(q, opts)
	if err != nil {
		panic(err)
	}
	// Trigger reevaluation of both registered queries with a real motion
	// update, then advance the clock so the persistent query replays a
	// non-empty logged history.
	db.Tick()
	if err := db.SetMotion(most.ObjectID(ids[0]), geom.Vector{X: 2, Y: 1}); err != nil {
		panic(err)
	}
	if _, err := cq.Current(db.Now()); err != nil {
		panic(err)
	}
	if _, err := pq.Current(); err != nil {
		panic(err)
	}
	cq.Cancel()
	pq.Cancel()
	return reg.Snapshot()
}

// Table renders the report in the experiment-table format.
func (r *ObsReport) Table() *Table {
	t := &Table{
		ID:      "OBS",
		Title:   "observability instrumentation overhead (enabled vs detached)",
		Claim:   "metrics and tracing hooks cost at most a few percent on the parallel benchmark; disabled hooks are one atomic load and a nil branch",
		Columns: []string{"objects", "disabled", "enabled", "overhead"},
	}
	for _, res := range r.Results {
		t.AddRow(
			itoa(res.Objects),
			ns(time.Duration(res.DisabledNs)),
			ns(time.Duration(res.EnabledNs)),
			f2(res.OverheadPct)+"%",
		)
	}
	t.Notes = append(t.Notes,
		"snapshot embedded in BENCH_obs.json shows the /obs schema with all three query-type traces")
	return t
}
