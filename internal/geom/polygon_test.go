package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewPolygonValidation(t *testing.T) {
	if _, err := NewPolygon(Point{0, 0, 0}, Point{1, 0, 0}); err != ErrDegeneratePolygon {
		t.Fatalf("err = %v, want ErrDegeneratePolygon", err)
	}
	if _, err := NewPolygon(Point{0, 0, 0}, Point{1, 0, 0}, Point{0, 1, 0}); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestPolygonContains(t *testing.T) {
	square := RectPolygon(0, 0, 10, 10)
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"center", Point{5, 5, 0}, true},
		{"outside right", Point{11, 5, 0}, false},
		{"outside diag", Point{-1, -1, 0}, false},
		{"on edge", Point{0, 5, 0}, true},
		{"on corner", Point{10, 10, 0}, true},
		{"just inside", Point{9.999, 9.999, 0}, true},
		{"just outside", Point{10.001, 5, 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := square.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// A "U" shape: the notch between the prongs is outside.
	u := MustPolygon(
		Point{0, 0, 0}, Point{10, 0, 0}, Point{10, 10, 0}, Point{7, 10, 0},
		Point{7, 3, 0}, Point{3, 3, 0}, Point{3, 10, 0}, Point{0, 10, 0},
	)
	if u.Contains(Point{5, 7, 0}) {
		t.Error("notch point should be outside")
	}
	if !u.Contains(Point{5, 1, 0}) {
		t.Error("base point should be inside")
	}
	if !u.Contains(Point{1.5, 8, 0}) || !u.Contains(Point{8.5, 8, 0}) {
		t.Error("prong points should be inside")
	}
	if u.IsConvex() {
		t.Error("U shape should not be convex")
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	sq := RectPolygon(2, 3, 6, 9)
	if got := sq.Area(); got != 24 {
		t.Errorf("Area = %v, want 24", got)
	}
	c := sq.Centroid()
	if math.Abs(c.X-4) > 1e-12 || math.Abs(c.Y-6) > 1e-12 {
		t.Errorf("Centroid = %v, want (4,6)", c)
	}
	tri := MustPolygon(Point{0, 0, 0}, Point{4, 0, 0}, Point{0, 3, 0})
	if got := tri.Area(); got != 6 {
		t.Errorf("triangle Area = %v, want 6", got)
	}
}

func TestPolygonBounds(t *testing.T) {
	pg := MustPolygon(Point{1, 5, 0}, Point{7, -2, 0}, Point{3, 9, 0})
	b := pg.Bounds()
	if b.Min != (Point{1, -2, 0}) || b.Max != (Point{7, 9, 0}) {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestRegularPolygon(t *testing.T) {
	hex := RegularPolygon(Point{0, 0, 0}, 2, 6)
	if hex.Len() != 6 {
		t.Fatalf("Len = %d", hex.Len())
	}
	if !hex.IsConvex() {
		t.Error("regular polygon should be convex")
	}
	if !hex.Contains(Point{0, 0, 0}) {
		t.Error("centre should be inside")
	}
	// Area of regular hexagon with circumradius r: (3*sqrt(3)/2) r^2.
	want := 3 * math.Sqrt(3) / 2 * 4
	if got := hex.Area(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Area = %v, want %v", got, want)
	}
}

func TestPolygonContainsMatchesWinding(t *testing.T) {
	// Property: for random convex polygons, Contains agrees with the
	// half-plane test on every edge.
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		n := 3 + r.Intn(6)
		pg := RegularPolygon(Point{r.Float64() * 10, r.Float64() * 10, 0}, 1+r.Float64()*5, n)
		vs := pg.Vertices()
		for j := 0; j < 50; j++ {
			p := Point{r.Float64()*30 - 10, r.Float64()*30 - 10, 0}
			inside := true
			for k := 0; k < n; k++ {
				a, b := vs[k], vs[(k+1)%n]
				cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
				if cross < -1e-9 { // CCW polygon: negative means outside
					inside = false
					break
				}
			}
			if got := pg.Contains(p); got != inside {
				t.Fatalf("case %d/%d: Contains(%v) = %v, half-plane says %v", i, j, p, got, inside)
			}
		}
	}
}
