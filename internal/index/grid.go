package index

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// GridIndex is an alternative mechanism for indexing dynamic attributes: a
// uniform grid over the (time, value) plane instead of an R-tree.  The
// paper's §7 lists "experimentally compare various mechanisms for indexing
// dynamic attributes" as future work; experiment E11 runs that comparison
// (R-tree vs grid vs scan).
//
// The grid covers time [Base, Base+T) and values [VMin, VMax); each cell
// stores the strips of the trajectories crossing it — a direct reading of
// §4's "hierarchical recursive decomposition of space, usually into
// rectangles", with a single-level decomposition.  Values escaping the
// covered range are clamped into the boundary rows, so answers remain
// correct (boundary cells just collect more strips).
//
// GridIndex is safe for concurrent use: probes take a read lock and run in
// parallel; mutators take the write lock.  InsertBatch releases the write
// lock between chunks so probes interleave with a bulk load.
type GridIndex struct {
	mu      sync.RWMutex
	base    temporal.Tick
	horizon temporal.Tick
	vMin    float64
	vMax    float64
	cols    int // time cells
	rows    int // value cells
	cells   [][]strip
	objects map[most.ObjectID][]gridRecord
}

type gridRecord struct {
	seg   motion.Segment
	cells []int // cell ids holding this strip
}

// NewGridIndex returns a grid index covering time [base, base+T) and
// values [vMin, vMax), with the given resolution (cells per axis).
func NewGridIndex(base, T temporal.Tick, vMin, vMax float64, cols, rows int) *GridIndex {
	if T <= 0 || vMax <= vMin || cols < 1 || rows < 1 {
		panic("index: bad grid parameters")
	}
	return &GridIndex{
		base:    base,
		horizon: T,
		vMin:    vMin,
		vMax:    vMax,
		cols:    cols,
		rows:    rows,
		cells:   make([][]strip, cols*rows),
		objects: map[most.ObjectID][]gridRecord{},
	}
}

// End returns the exclusive end of the indexed window.
func (g *GridIndex) End() temporal.Tick {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.end()
}

// end is End without the lock, for methods already holding it.
func (g *GridIndex) end() temporal.Tick { return g.base.Add(g.horizon) }

// Len returns the number of indexed objects.
func (g *GridIndex) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.objects)
}

// col maps a time to a column, clamped.
func (g *GridIndex) col(t float64) int {
	w := float64(g.horizon) / float64(g.cols)
	c := int(math.Floor((t - float64(g.base)) / w))
	if c < 0 {
		c = 0
	}
	if c >= g.cols {
		c = g.cols - 1
	}
	return c
}

// row maps a value to a row, clamped.
func (g *GridIndex) row(v float64) int {
	h := (g.vMax - g.vMin) / float64(g.rows)
	r := int(math.Floor((v - g.vMin) / h))
	if r < 0 {
		r = 0
	}
	if r >= g.rows {
		r = g.rows - 1
	}
	return r
}

// Insert indexes the object's trajectory over the window.
func (g *GridIndex) Insert(id most.ObjectID, attr motion.DynamicAttr) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.objects[id]; dup {
		return fmt.Errorf("index: object %s already indexed", id)
	}
	g.insertFrom(id, attr, float64(g.base))
	return nil
}

// InsertBatch indexes many objects at once, taking the write lock per chunk
// of insertChunk objects so concurrent probes interleave with the load.
func (g *GridIndex) InsertBatch(entries []AttrEntry) error {
	for start := 0; start < len(entries); start += insertChunk {
		chunkEnd := start + insertChunk
		if chunkEnd > len(entries) {
			chunkEnd = len(entries)
		}
		g.mu.Lock()
		for i := start; i < chunkEnd; i++ {
			e := entries[i]
			if _, dup := g.objects[e.ID]; dup {
				g.mu.Unlock()
				return fmt.Errorf("index: object %s already indexed", e.ID)
			}
			g.insertFrom(e.ID, e.Attr, float64(g.base))
		}
		g.mu.Unlock()
	}
	return nil
}

func (g *GridIndex) insertFrom(id most.ObjectID, attr motion.DynamicAttr, from float64) {
	recs := g.objects[id]
	for _, seg := range attr.Trajectory(from, float64(g.end())) {
		// Walk the columns the segment spans; within each column the value
		// range gives the row span crossed.
		recs = append(recs, g.placeSegment(id, seg))
	}
	g.objects[id] = recs
}

// Remove drops an object.
func (g *GridIndex) Remove(id most.ObjectID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	recs, ok := g.objects[id]
	if !ok {
		return false
	}
	for _, rec := range recs {
		g.removeStrip(id, rec)
	}
	delete(g.objects, id)
	return true
}

func (g *GridIndex) removeStrip(id most.ObjectID, rec gridRecord) {
	for _, cell := range rec.cells {
		list := g.cells[cell]
		for i := range list {
			if list[i].id == id && list[i].seg == rec.seg {
				g.cells[cell] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
}

// Update replaces the trajectory from tick t on.
func (g *GridIndex) Update(id most.ObjectID, attr motion.DynamicAttr, t temporal.Tick) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	recs, ok := g.objects[id]
	if !ok {
		return fmt.Errorf("index: object %s not indexed", id)
	}
	at := float64(t)
	kept := make([]gridRecord, 0, len(recs))
	for _, rec := range recs {
		if rec.seg.T1 <= at {
			kept = append(kept, rec)
			continue
		}
		g.removeStrip(id, rec)
		if rec.seg.T0 < at {
			kept = append(kept, g.placeSegment(id, rec.seg.Sub(rec.seg.T0, at)))
		}
	}
	g.objects[id] = kept
	start := at
	if start < float64(g.base) {
		start = float64(g.base)
	}
	g.insertFrom(id, attr, start)
	return nil
}

// placeSegment registers one trajectory segment in every cell it crosses
// and returns its record.
func (g *GridIndex) placeSegment(id most.ObjectID, seg motion.Segment) gridRecord {
	colWidth := float64(g.horizon) / float64(g.cols)
	rec := gridRecord{seg: seg}
	s := strip{id: id, seg: seg}
	c0, c1 := g.col(seg.T0), g.col(seg.T1)
	for c := c0; c <= c1; c++ {
		t0 := math.Max(seg.T0, float64(g.base)+float64(c)*colWidth)
		t1 := math.Min(seg.T1, float64(g.base)+float64(c+1)*colWidth)
		if t0 > t1 {
			continue
		}
		_, _, v0, v1 := seg.Sub(t0, t1).Bounds()
		r0, r1 := g.row(v0), g.row(v1)
		for r := r0; r <= r1; r++ {
			cell := r*g.cols + c
			g.cells[cell] = append(g.cells[cell], s)
			rec.cells = append(rec.cells, cell)
		}
	}
	return rec
}

// InstantQuery answers "which objects currently have lo <= A <= hi" at
// tick t by examining the cells the query rectangle touches.
func (g *GridIndex) InstantQuery(lo, hi float64, t temporal.Tick) []most.ObjectID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	at := float64(t)
	c := g.col(at)
	r0, r1 := g.row(lo), g.row(hi)
	var out []most.ObjectID
	var dup map[most.ObjectID]bool
	for r := r0; r <= r1; r++ {
		for _, s := range g.cells[r*g.cols+c] {
			if at < s.seg.T0 || at > s.seg.T1 {
				continue
			}
			if v := s.seg.ValueAt(at); v < lo || v > hi {
				continue
			}
			if dup[s.id] {
				continue
			}
			if dup == nil {
				dup = map[most.ObjectID]bool{}
			}
			dup[s.id] = true
			out = append(out, s.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContinuousQuery returns, per object, the time intervals in [t, T) during
// which lo <= A <= hi.
func (g *GridIndex) ContinuousQuery(lo, hi float64, t temporal.Tick) []ContinuousAnswer {
	g.mu.RLock()
	defer g.mu.RUnlock()
	from := float64(t)
	to := float64(g.end())
	c0, c1 := g.col(from), g.col(to-1e-9)
	r0, r1 := g.row(lo), g.row(hi)
	type key struct {
		id  most.ObjectID
		seg motion.Segment
	}
	seen := map[key]bool{}
	hits := map[most.ObjectID][]geom.RealInterval{}
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			for _, s := range g.cells[r*g.cols+c] {
				k := key{id: s.id, seg: s.seg}
				if seen[k] {
					continue
				}
				seen[k] = true
				if set, ok := segmentRange(s.seg, lo, hi, from, to); ok {
					hits[s.id] = append(hits[s.id], set.Intervals()...)
				}
			}
		}
	}
	ids := make([]most.ObjectID, 0, len(hits))
	for id := range hits {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []ContinuousAnswer
	for _, id := range ids {
		set := geom.NewRealSet(hits[id]...)
		if !set.IsEmpty() {
			out = append(out, ContinuousAnswer{ID: id, Times: set})
		}
	}
	return out
}
