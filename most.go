// Package mostdb is a Go implementation of the MOST data model and FTL
// query language for moving-objects databases, after "Modeling and Querying
// Moving Objects" (Sistla, Wolfson, Chamberlain, Dao; ICDE 1997).
//
// The library models moving objects by their motion functions instead of
// their sampled positions: a dynamic attribute holds (value, updatetime,
// function) and the database answers queries about the attribute's value at
// any time — past the last update, into the predicted future — without
// being told new positions every tick.  On top of the model sit:
//
//   - FTL, a future temporal logic query language with Until, Nexttime,
//     Eventually, Always, bounded operators and an assignment quantifier,
//     evaluated by the paper's interval-relation algorithm;
//   - the three MOST query types: instantaneous, continuous (materialized
//     Answer(CQ), maintained under updates) and persistent (anchored to
//     entry time, replaying the logged history);
//   - dynamic-attribute indexing: an R-tree over the (time, value) plane of
//     attribute trajectories, with the 3-D (x, y, time) variant for planar
//     movement;
//   - the MOST-on-a-DBMS layer: dynamic attributes stored as ordinary
//     columns of a bundled in-memory relational engine, with the 2^k
//     WHERE-clause decomposition and index-assisted rewriting;
//   - a simulator for the mobile distributed architecture: per-vehicle
//     computers, query classification, ship-objects versus broadcast-query
//     strategies, and immediate versus delayed answer delivery;
//   - fault tolerance: a write-ahead log making the database
//     crash-recoverable (AttachWAL, Recover, Checkpoint), and — in the
//     distributed simulation — deterministic fault injection with
//     acknowledged, idempotent retransmission of answers and updates.
//
// # Concurrency
//
// Database, Engine, ContinuousQuery, PersistentQuery, Trigger and the three
// index types are safe for concurrent use by multiple goroutines; value
// types (Tick, Interval, Point, MotionFunc, DynamicAttr, Query, ...) are
// immutable.  QueryOptions.Parallelism additionally fans one evaluation's
// per-object loops over a worker pool — the answer is identical at every
// setting.  Store, SQLSystem and Sim model single-site systems and must be
// driven from one goroutine.  See ARCHITECTURE.md for the locking
// discipline and snapshot semantics.
//
// This file is the public facade: it re-exports the library's types and
// constructors so applications depend on a single import path.
package mostdb

import (
	"io"
	"time"

	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/dist"
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/mostsql"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/relstore"
	"github.com/mostdb/most/internal/server"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/workload"
)

// ---- time ----

// Tick is one instant of the global discrete clock (§2.1's "the database
// clock").  Immutable value; safe to share.
type Tick = temporal.Tick

// Interval is a closed interval of ticks (§2.3's answer intervals).
// Immutable value; safe to share.
type Interval = temporal.Interval

// TickSet is a normalized set of ticks (disjoint, non-consecutive
// intervals) — the satisfaction sets of the appendix algorithm.  Immutable
// value; safe to share.
type TickSet = temporal.Set

// ---- geometry ----

// Point is a position in space (§2.1 POSITION values).  Immutable value;
// safe to share.
type Point = geom.Point

// Vector is a displacement or motion vector, distance per tick (§1's
// "motion vector").  Immutable value; safe to share.
type Vector = geom.Vector

// Polygon is a simple polygon in the XY plane — the regions of §3's
// INSIDE/OUTSIDE predicates.  Immutable after construction; safe to share.
type Polygon = geom.Polygon

// RectPolygon returns the axis-aligned rectangle [x0,x1] x [y0,y1] as a
// Polygon for INSIDE/OUTSIDE (§3.4).  Safe for concurrent callers.
func RectPolygon(x0, y0, x1, y1 float64) Polygon { return geom.RectPolygon(x0, y0, x1, y1) }

// RectRegion is an axis-aligned box, used to bound workload regions and
// index probes (§4).  Immutable value; safe to share.
type RectRegion = geom.Rect

// Rect builds an axis-aligned box from corner coordinates.  Safe for
// concurrent callers.
func Rect(x0, y0, x1, y1 float64) RectRegion {
	return geom.Rect{Min: geom.Point{X: x0, Y: y0}, Max: geom.Point{X: x1, Y: y1}}
}

// NewPolygon builds a polygon from vertices (§3 region predicates).  Safe
// for concurrent callers.
func NewPolygon(vertices ...Point) (Polygon, error) { return geom.NewPolygon(vertices...) }

// Dist returns the distance between two points — the DIST spatial method of
// §3.2.  Pure function; safe for concurrent callers.
func Dist(p, q Point) float64 { return geom.Dist(p, q) }

// ---- motion ----

// MotionFunc is a piecewise-polynomial (linear or quadratic) function of
// time with f(0) = 0 — the A.function sub-attribute of §2.1.  Immutable
// value; safe to share.
type MotionFunc = motion.Func

// Linear returns the function f(t) = slope*t (§2.1's base case).  Safe for
// concurrent callers.
func Linear(slope float64) MotionFunc { return motion.Linear(slope) }

// Accelerating returns the quadratic function f(t) = slope*t + accel*t^2/2
// — the paper's "nonlinear functions" extension (§7), supported exactly by
// comparisons, range queries and the indexes (POSITION attributes must
// remain piecewise linear).  Safe for concurrent callers.
func Accelerating(slope, accel float64) MotionFunc { return motion.Accelerating(slope, accel) }

// DynamicAttr is a dynamic attribute, the triple (value, updatetime,
// function) of §2.1; its value at time t is value + function(t -
// updatetime).  Immutable value; safe to share.
type DynamicAttr = motion.DynamicAttr

// Position bundles the X/Y/Z.POSITION dynamic attributes of a spatial
// object (§2.1).  Immutable value; safe to share.
type Position = motion.Position

// MovingFrom places an object at p at tick t0 with motion vector v —
// §2.1's "location of a moving object is a dynamic attribute".  Safe for
// concurrent callers.
func MovingFrom(p Point, v Vector, t0 Tick) Position { return motion.MovingFrom(p, v, t0) }

// PositionAt places a stationary object at p (motion vector zero).  Safe
// for concurrent callers.
func PositionAt(p Point, t0 Tick) Position { return motion.PositionAt(p, t0) }

// ---- the MOST data model ----

// Database is a MOST database (§2.1): classes, objects, a clock, an update
// log.  Safe for concurrent use by any number of updaters and readers; see
// ARCHITECTURE.md for the sharded locking discipline.  Snapshot-based
// reads mean queries never block explicit updates.
type Database = most.Database

// Class is an object class (§2.1); spatial classes carry the POSITION
// dynamic attributes.  Immutable after construction; safe to share.
type Class = most.Class

// AttrDef declares one attribute of a class as Static or Dynamic (§2.1).
// Immutable value; safe to share.
type AttrDef = most.AttrDef

// Attribute kinds (§2.1: attributes are "of two types: static and
// dynamic").
const (
	Static  = most.Static
	Dynamic = most.Dynamic
)

// Object is one immutable object revision; mutations through the Database
// produce new revisions (the basis of the copy-on-read snapshots).  Safe
// to share across goroutines.
type Object = most.Object

// ObjectID identifies an object.  Immutable value; safe to share.
type ObjectID = most.ObjectID

// Value is a static attribute value (§2.1).  Immutable value; safe to
// share.
type Value = most.Value

// NewDatabase returns an empty database with the clock at 0.  The returned
// Database is safe for concurrent use.
func NewDatabase() *Database { return most.NewDatabase() }

// LoadSnapshotJSON rebuilds a database from a SnapshotJSON payload.  Safe
// for concurrent callers; the returned Database is safe for concurrent
// use.
func LoadSnapshotJSON(data []byte) (*Database, error) { return most.LoadSnapshotJSON(data) }

// WAL is an append-only write-ahead log of committed database updates.
// Attach one with Database.AttachWAL to make a database crash-recoverable:
// every commit is logged before it becomes visible, and Recover replays the
// log into a byte-identical database.  Safe for use by one attached
// Database.
type WAL = most.WAL

// RecoveryReport describes the outcome of a WAL replay: how many records
// applied cleanly and whether a torn or corrupted tail was truncated.
type RecoveryReport = most.RecoveryReport

// NewWAL returns a write-ahead log that appends records to w.
func NewWAL(w io.Writer) *WAL { return most.NewWAL(w) }

// OpenWAL opens (or creates) a file-backed write-ahead log, positioned to
// append after any existing records.
func OpenWAL(path string) (*WAL, error) { return most.OpenWAL(path) }

// Recover rebuilds a database from an optional snapshot plus a WAL byte
// stream.  Corrupted or truncated logs fail safe: replay stops at the
// first bad record, the report says what was truncated, and the database
// reflects every record before it.  Never panics on hostile input.
func Recover(snapshot, wal []byte) (*Database, *RecoveryReport, error) {
	return most.Recover(snapshot, wal)
}

// RecoverFiles is Recover reading the snapshot and WAL from files; either
// path may be empty.
func RecoverFiles(snapPath, walPath string) (*Database, *RecoveryReport, error) {
	return most.RecoverFiles(snapPath, walPath)
}

// NewClass declares an object class (§2.1).  Safe for concurrent callers.
func NewClass(name string, spatial bool, attrs ...AttrDef) (*Class, error) {
	return most.NewClass(name, spatial, attrs...)
}

// NewObject builds an object of a class (§2.1).  Safe for concurrent
// callers; the object is immutable.
func NewObject(id ObjectID, class *Class) (*Object, error) { return most.NewObject(id, class) }

// Float wraps a number as a static attribute value (§2.1).  Safe for
// concurrent callers.
func Float(f float64) Value { return most.Float(f) }

// Str wraps a string value (§2.1).  Safe for concurrent callers.
func Str(s string) Value { return most.Str(s) }

// Bool wraps a boolean value (§2.1).  Safe for concurrent callers.
func Bool(b bool) Value { return most.Bool(b) }

// Position attribute names of spatial classes (§2.1's X.POSITION,
// Y.POSITION, Z.POSITION).
const (
	XPosition = most.XPosition
	YPosition = most.YPosition
	ZPosition = most.ZPosition
)

// ---- FTL ----

// Query is a parsed FTL query (§3: RETRIEVE ... FROM ... WHERE formula).
// Immutable after parsing; safe to share and to evaluate concurrently.
type Query = ftl.Query

// ParseQuery parses "RETRIEVE ... FROM ... WHERE <FTL formula>" (§3.1
// syntax).  Safe for concurrent callers.
func ParseQuery(src string) (*Query, error) { return ftl.Parse(src) }

// MustParseQuery parses a query and panics on error (§3.1).  Safe for
// concurrent callers.
func MustParseQuery(src string) *Query { return ftl.MustParse(src) }

// Relation is a materialized FTL answer (§2.3, appendix): instantiations
// with the interval sets during which they satisfy the query.  Immutable
// once returned by an evaluation; safe to share.
type Relation = eval.Relation

// Answer is one (instantiation, begin, end) tuple of Answer(CQ) (§2.3).
// Immutable value; safe to share.
type Answer = eval.Answer

// Val is a value an FTL variable takes in an answer (§3.3
// instantiations).  Immutable value; safe to share.
type Val = eval.Val

// ---- query engine ----

// Engine evaluates instantaneous, continuous and persistent queries
// (§2.3) against one Database.  Safe for concurrent use: evaluations run
// on copy-on-read snapshots, and maintenance of registered queries
// coalesces under concurrent updates.
type Engine = query.Engine

// QueryOptions configure an evaluation (§2.3, §3): horizon (query
// expiry), regions, parameters, and the Parallelism knob that fans the
// evaluator's per-object loops over a worker pool (0/1 sequential, n > 1
// workers, negative = GOMAXPROCS) with an identical answer at every
// setting.  Immutable value; safe to share.
type QueryOptions = query.Options

// ContinuousQuery is a registered continuous query with a maintained
// Answer(CQ) (§2.3): evaluated once, reevaluated only when a relevant
// update commits.  Safe for concurrent use; Answer/Current may be called
// while maintenance runs.
type ContinuousQuery = query.Continuous

// PersistentQuery is a registered persistent query anchored at entry time
// (§2.3): reevaluated over the logged history on every update.  Safe for
// concurrent use.
type PersistentQuery = query.Persistent

// Trigger couples a continuous query with an action — the temporal
// triggers of §2.3.  Safe for concurrent use.
type Trigger = query.Trigger

// Row is one presented answer instantiation (§3.5 per-tick presentation).
// Treat as immutable once returned.
type Row = query.Row

// NewEngine returns a query engine bound to db, subscribed to its updates
// (§2.3 continuous-query maintenance).  The returned Engine is safe for
// concurrent use.
func NewEngine(db *Database) *Engine { return query.NewEngine(db) }

// ---- indexing ----

// AttrIndex is the dynamic-attribute index of §4: a (time, value)-plane
// R-tree over trajectory strips within a finite window.  Safe for
// concurrent use — probes share a read lock; InsertBatch interleaves a
// bulk load with probes.
type AttrIndex = index.AttrIndex

// MotionIndex is the 3-D (x, y, time) variant of §4 for objects moving in
// the plane.  Safe for concurrent use, like AttrIndex.
type MotionIndex = index.MotionIndex

// NewAttrIndex returns an index covering [base, base+T) (§4's finite
// indexed window).  Safe for concurrent callers.
func NewAttrIndex(base, T Tick) *AttrIndex { return index.NewAttrIndex(base, T) }

// NewMotionIndex returns a motion index covering [base, base+T) (§4).
// Safe for concurrent callers.
func NewMotionIndex(base, T Tick) *MotionIndex { return index.NewMotionIndex(base, T) }

// GridIndex is the alternative uniform-grid mechanism for indexing dynamic
// attributes (the §7 future-work comparison, run in experiment E11).  Safe
// for concurrent use, like AttrIndex.
type GridIndex = index.GridIndex

// NewGridIndex returns a grid index over time [base, base+T) and values
// [vMin, vMax) at the given cell resolution (§4 variant).  Safe for
// concurrent callers.
func NewGridIndex(base, T Tick, vMin, vMax float64, cols, rows int) *GridIndex {
	return index.NewGridIndex(base, T, vMin, vMax, cols, rows)
}

// ---- MOST on a DBMS ----

// Store is the bundled in-memory relational DBMS standing in for §5.1's
// "existing DBMS".  Not synchronized: drive from one goroutine.
type Store = relstore.Store

// NewStore returns an empty store (§5.1).  The returned Store must be
// driven from one goroutine.
func NewStore() *Store { return relstore.NewStore() }

// SQLSystem is the MOST layer over a Store (§5.1): dynamic attributes as
// ordinary columns, 2^k WHERE decomposition, index-assisted rewriting.
// Not synchronized: drive from one goroutine.
type SQLSystem = mostsql.System

// NewSQLSystem wraps a store; now supplies the clock (§5.1).  The returned
// system must be driven from one goroutine.
func NewSQLSystem(store *Store, now func() Tick) *SQLSystem { return mostsql.New(store, now) }

// SQLValue is a value of the bundled relational DBMS (§5.1).  Immutable
// value; safe to share.
type SQLValue = relstore.Value

// SQLNum wraps a number for the relational layer (§5.1).  Safe for
// concurrent callers.
func SQLNum(f float64) SQLValue { return relstore.Num(f) }

// SQLStr wraps a string for the relational layer (§5.1).  Safe for
// concurrent callers.
func SQLStr(s string) SQLValue { return relstore.Str(s) }

// SQLBool wraps a bool for the relational layer (§5.1).  Safe for
// concurrent callers.
func SQLBool(b bool) SQLValue { return relstore.Bool(b) }

// ---- distributed ----

// Sim is the mobile distributed simulation of §5.2–5.3: per-object mobile
// computers, query classification, strategy and delivery costs.  Not
// synchronized: drive from one goroutine.
type Sim = dist.Sim

// NewSim returns an empty simulation (§5.2).  The returned Sim must be
// driven from one goroutine.
func NewSim(seed int64) *Sim { return dist.NewSim(seed) }

// Object-query strategies (§5.3: ship the objects to the query versus
// broadcast the query to the objects).
const (
	ShipObjects    = dist.ShipObjects
	BroadcastQuery = dist.BroadcastQuery
)

// Delivery modes for Answer(CQ) transmission to a mobile client (§5.3:
// immediate versus delayed delivery).
const (
	Immediate = dist.Immediate
	Delayed   = dist.Delayed
)

// ---- workloads ----

// FleetSpec parameterizes a synthetic vehicle fleet (the motivating
// vehicles of §1).  Immutable value; safe to share.
type FleetSpec = workload.FleetSpec

// Fleet builds a database of moving vehicles (§1 scenario).  Safe for
// concurrent callers; the returned Database is safe for concurrent use.
func Fleet(spec FleetSpec) (*Database, error) { return workload.Fleet(spec) }

// AirspaceSpec parameterizes an air-traffic scenario (§1's ATC queries).
// Immutable value; safe to share.
type AirspaceSpec = workload.AirspaceSpec

// Airspace builds a database of aircraft around an airport (§1).  Safe for
// concurrent callers; the returned Database is safe for concurrent use.
func Airspace(spec AirspaceSpec) (*Database, error) { return workload.Airspace(spec) }

// MotelsSpec parameterizes the MOTELS relation (§1's motel query).
// Immutable value; safe to share.
type MotelsSpec = workload.MotelsSpec

// AddMotels inserts stationary motels into a database (§1).  Safe for
// concurrent callers.
func AddMotels(db *Database, spec MotelsSpec) error { return workload.AddMotels(db, spec) }

// ---- network service ----

// Server serves a Database and Engine over TCP using the internal/wire
// protocol: pipelined requests, batched updates, snapshots, and server-push
// streaming of continuous-query answer changes.  Safe for concurrent use.
type Server = server.Server

// ServerConfig tunes a Server; the zero value serves with sane defaults.
type ServerConfig = server.Config

// NewServer returns a network server over db and eng (eng must be bound to
// db).  Start it with ListenAndServe or Serve; stop it with Shutdown.
func NewServer(db *Database, eng *Engine, cfg ServerConfig) *Server {
	return server.New(db, eng, cfg)
}

// ServerRecoveryInfo reports what NewDurableServer rebuilt from disk.
type ServerRecoveryInfo = server.RecoveryInfo

// NewDurableServer returns a crash-safe network server persisting every
// committed mutation to a write-ahead log under dir, with periodic
// checkpoints (ServerConfig.CheckpointEvery) bounding replay time.  On
// startup it recovers the database — and the idempotence receipts that
// make client retries exactly-once across a crash — from the checkpoint
// and log; a fresh directory starts from seed() (nil seed = empty
// database).  Stop it with Shutdown, which checkpoints before closing.
func NewDurableServer(dir string, cfg ServerConfig, seed func() *Database) (*Server, *ServerRecoveryInfo, error) {
	return server.NewDurable(dir, cfg, seed)
}

// Client is a network client for a Server: connection management,
// idempotent retry of mutating requests across reconnects, and a Subscribe
// API mirroring the in-process ContinuousQuery.  Safe for concurrent use.
type Client = client.Client

// ClientSubscription is a client-side continuous query: it holds the last
// pushed Answer(CQ) and presents the rows current at any tick locally,
// without a round trip.
type ClientSubscription = client.Subscription

// ClientOption configures Dial (WithTimeout, WithClientID, WithRetries,
// WithProtocol, ...).
type ClientOption = client.Option

// WithTimeout bounds each round trip, including retries.
func WithTimeout(d time.Duration) ClientOption { return client.WithTimeout(d) }

// WithRetries caps reconnect-and-retransmit attempts per call.
func WithRetries(n int) ClientOption { return client.WithRetries(n) }

// WithClientID sets the client identity that keys the server's
// idempotence cache; stable IDs give retried mutations exactly-once
// application across reconnects.
func WithClientID(id string) ClientOption { return client.WithClientID(id) }

// WithProtocol caps the wire protocol version the client offers during the
// Hello handshake (1 = JSON payloads, 2 = binary).  The session runs at
// min(client, server); by default clients offer the newest version they
// implement.  See PROTOCOL.md for the negotiation rules.
func WithProtocol(v int) ClientOption { return client.WithProtocol(v) }

// WithBackoff sets the client's retry/reconnect backoff schedule: delays
// double from base up to max, with ±25% jitter to desynchronize fleets.
func WithBackoff(base, max time.Duration) ClientOption { return client.WithBackoff(base, max) }

// WithJitterSeed fixes the backoff jitter seed (default: derived from the
// client ID) for reproducible retry schedules in tests.
func WithJitterSeed(seed int64) ClientOption { return client.WithJitterSeed(seed) }

// ClientServerError is a request the server received and refused; Code
// distinguishes retryable shedding from final refusals.
type ClientServerError = client.ServerError

// Dial connects to a Server at addr.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	return client.Dial(addr, opts...)
}
