package server

// End-to-end concurrency test: many pipelining writer clients and several
// streaming subscribers hammer one server under the race detector, while a
// deliberately stalled subscriber (a raw connection that completes the
// handshake, subscribes, and then never reads again) jams its socket.  The
// server must (a) disconnect the slow consumer within the backpressure
// budget, (b) keep every other session committing throughout, and (c) keep
// the commit path itself off the stalled socket — pure apply latency stays
// far below the write budget even while the stall is in force.

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/wire"
)

func TestServerBackpressureE2E(t *testing.T) {
	const (
		nVehicles   = 120
		writers     = 8
		subscribers = 4
		budget      = 400 * time.Millisecond
	)
	reg := obs.New()
	srv, addr := startTestServer(t, nVehicles, Config{
		Reg:         reg,
		WriteBudget: budget,
		OutQueue:    8,
		BaseOptions: query.Options{
			Horizon: 50,
			// The region covers the whole fleet so every push carries the
			// full 120-row answer: fat enough to jam a non-reading peer's
			// socket quickly, while delta maintenance keeps the per-update
			// apply cost tiny (the single-variable query patches only the
			// moved object).
			Regions: map[string]geom.Polygon{"P": geom.RectPolygon(0, 0, 100, 100)},
		},
	})
	_ = srv

	// Bounded Eventually: decomposable, so each update takes the engine's
	// incremental delta path instead of a full reevaluation.
	const subSrc = `RETRIEVE o FROM Vehicles o WHERE Eventually WITHIN 30 INSIDE(o, P)`

	// Healthy subscribers: real clients whose read loops always drain.
	var healthy []*client.Subscription
	for i := 0; i < subscribers; i++ {
		c, err := client.Dial(addr, client.WithClientID(fmt.Sprintf("sub-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		sub, err := c.Subscribe(subSrc, 50)
		if err != nil {
			t.Fatal(err)
		}
		healthy = append(healthy, sub)
	}

	// The stalled subscriber: handshake and subscribe by hand, then stop
	// reading forever.  A tiny receive buffer closes the TCP window fast.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if tcp, ok := raw.(*net.TCPConn); ok {
		tcp.SetReadBuffer(2048)
	}
	dec := wire.NewDecoder(raw, wire.DefaultMaxPayload)
	mustCall := func(op wire.Opcode, id uint64, payload any) wire.Frame {
		t.Helper()
		f, err := wire.Encode(op, id, payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteFrame(raw, f); err != nil {
			t.Fatal(err)
		}
		resp, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	mustCall(wire.OpHello, 1, wire.HelloReq{ClientID: "stalled"})
	mustCall(wire.OpSubscribe, 2, wire.SubscribeReq{Src: subSrc, Horizon: 50})
	stallStart := time.Now()

	// Pipelining writers: each client fires batched motion updates as fast
	// as the server acknowledges them.
	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		commits  atomic.Int64
		writeErr atomic.Value
	)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr, client.WithClientID(fmt.Sprintf("writer-%d", w)))
			if err != nil {
				writeErr.Store(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w) * 271))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ops := make([]wire.UpdateOp, 4)
				for i := range ops {
					ops[i] = wire.UpdateOp{
						Op: wire.OpSetMotion,
						ID: vid(rng.Intn(nVehicles)),
						VX: (rng.Float64() - 0.5) * 4,
						VY: (rng.Float64() - 0.5) * 4,
					}
				}
				if _, err := c.UpdateBatch(ops); err != nil {
					writeErr.Store(err)
					return
				}
				commits.Add(1)
			}
		}()
	}

	// The slow consumer must be detected and cut loose.
	detectDeadline := time.After(20 * time.Second)
	for reg.Snapshot().Counters["server.slow_consumer_disconnects"] == 0 {
		select {
		case <-detectDeadline:
			close(stop)
			wg.Wait()
			t.Fatalf("slow consumer never disconnected; commits=%d", commits.Load())
		case <-time.After(20 * time.Millisecond):
		}
	}
	detectTime := time.Since(stallStart)
	t.Logf("slow consumer disconnected after %v (budget %v); commits so far: %d",
		detectTime, budget, commits.Load())

	// Everyone else keeps committing after the disconnect.
	before := commits.Load()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err, _ := writeErr.Load().(error); err != nil {
		t.Fatalf("writer failed: %v", err)
	}
	after := commits.Load()
	if after <= before {
		t.Fatalf("no commits after slow-consumer disconnect (before=%d after=%d)", before, after)
	}

	// Healthy subscriptions survived the stall.
	for i, sub := range healthy {
		if _, _, err := sub.Answer(); err != nil {
			t.Fatalf("healthy subscriber %d failed: %v", i, err)
		}
	}

	// The commit path never waited on the stalled socket: pure apply
	// latency stays well inside the write budget.
	snap := reg.Snapshot()
	applyP99 := time.Duration(snap.Histograms["server.apply_ns"].P99)
	if applyP99 >= budget {
		t.Fatalf("apply p99 = %v, not bounded below the %v write budget", applyP99, budget)
	}
	if snap.Counters["server.slow_consumer_disconnects"] < 1 {
		t.Fatal("slow-consumer counter lost")
	}
	if after < int64(writers) {
		t.Fatalf("writers made almost no progress: %d commits", after)
	}
	t.Logf("total commits %d, apply p99 %v, notifies %d (coalesced %d)",
		after, applyP99,
		snap.Counters["server.notifies"], snap.Counters["server.notifies_coalesced"])
}
