package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// This file checks the interval algebra point-wise: every set operation
// must agree, tick for tick, with the boolean combination of Contains over
// a probe window straddling all generated intervals, and every result must
// satisfy the appendix normalization invariant (sorted, disjoint,
// non-consecutive).  set_test.go checks algebraic laws; this checks the
// semantics those laws are about.

// probe is the window brute-force membership is sampled over.  randomSet
// draws intervals from [-40, 71], so probe strictly contains every
// generated tick plus a margin on both sides.
var probe = Interval{Start: -60, End: 90}

func TestPointwiseSemantics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}

	type binop struct {
		name string
		op   func(a, b Set) Set
		want func(inA, inB bool) bool
	}
	for _, bo := range []binop{
		{"Union", Set.Union, func(a, b bool) bool { return a || b }},
		{"Intersect", Set.Intersect, func(a, b bool) bool { return a && b }},
		{"Subtract", Set.Subtract, func(a, b bool) bool { return a && !b }},
	} {
		bo := bo
		prop := func(seedA, seedB int64) bool {
			a := randomSet(rand.New(rand.NewSource(seedA)))
			b := randomSet(rand.New(rand.NewSource(seedB)))
			got := bo.op(a, b)
			if !got.Normalized() {
				return false
			}
			for tk := probe.Start; tk <= probe.End; tk++ {
				if got.Contains(tk) != bo.want(a.Contains(tk), b.Contains(tk)) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("%s: %v", bo.name, err)
		}
	}
}

func TestPointwiseComplementAndClip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}

	complement := func(seed int64, loRaw, lenRaw uint8) bool {
		a := randomSet(rand.New(rand.NewSource(seed)))
		w := Interval{Start: Tick(int(loRaw)%80 - 40), End: 0}
		w.End = w.Start + Tick(lenRaw%60)
		got := a.ComplementWithin(w)
		if !got.Normalized() {
			return false
		}
		for tk := probe.Start; tk <= probe.End; tk++ {
			want := w.Contains(tk) && !a.Contains(tk)
			if got.Contains(tk) != want {
				return false
			}
		}
		// Complement is an involution within the window.
		return got.ComplementWithin(w).Equal(a.Clip(w))
	}
	if err := quick.Check(complement, cfg); err != nil {
		t.Errorf("ComplementWithin: %v", err)
	}

	clip := func(seed int64, loRaw, lenRaw uint8) bool {
		a := randomSet(rand.New(rand.NewSource(seed)))
		w := Interval{Start: Tick(int(loRaw)%80 - 40), End: 0}
		w.End = w.Start + Tick(lenRaw%60)
		got := a.Clip(w)
		if !got.Normalized() {
			return false
		}
		for tk := probe.Start; tk <= probe.End; tk++ {
			if got.Contains(tk) != (a.Contains(tk) && w.Contains(tk)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(clip, cfg); err != nil {
		t.Errorf("Clip: %v", err)
	}
}

func TestPointwiseShift(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	prop := func(seed int64, dRaw int8) bool {
		a := randomSet(rand.New(rand.NewSource(seed)))
		d := Tick(dRaw % 20)
		got := a.Shift(d)
		if !got.Normalized() {
			return false
		}
		// t is in shift(a, d) iff t-d is in a.
		for tk := probe.Start; tk <= probe.End; tk++ {
			if got.Contains(tk) != a.Contains(tk-d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("Shift: %v", err)
	}
}

func TestCardinalityPartition(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	// |a| == |a ∩ b| + |a - b|, and cardinality equals the brute count.
	prop := func(seedA, seedB int64) bool {
		a := randomSet(rand.New(rand.NewSource(seedA)))
		b := randomSet(rand.New(rand.NewSource(seedB)))
		if a.Cardinality() != a.Intersect(b).Cardinality()+a.Subtract(b).Cardinality() {
			return false
		}
		var count Tick
		for tk := probe.Start; tk <= probe.End; tk++ {
			if a.Contains(tk) {
				count++
			}
		}
		return count == a.Cardinality()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestNextAtOrAfterMatchesScan(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	prop := func(seed int64, fromRaw int8) bool {
		a := randomSet(rand.New(rand.NewSource(seed)))
		from := Tick(fromRaw)
		got, ok := a.NextAtOrAfter(from)
		for tk := from; tk <= probe.End; tk++ {
			if a.Contains(tk) {
				return ok && got == tk
			}
		}
		// Nothing in the probe window at or after from; any remaining
		// member would be outside the generated range.
		return !ok
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestNewSetNormalizesArbitraryInput(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// NewSet must normalize arbitrary (overlapping, unordered, invalid)
	// input without changing membership.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(8)
		ivs := make([]Interval, 0, n)
		for i := 0; i < n; i++ {
			s := Tick(r.Intn(100) - 40)
			e := s + Tick(r.Intn(25)-5) // sometimes invalid (End < Start)
			ivs = append(ivs, Interval{Start: s, End: e})
		}
		got := NewSet(ivs...)
		if !got.Normalized() {
			return false
		}
		for tk := probe.Start; tk <= probe.End; tk++ {
			want := false
			for _, iv := range ivs {
				if iv.Valid() && iv.Contains(tk) {
					want = true
					break
				}
			}
			if got.Contains(tk) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
