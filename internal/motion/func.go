// Package motion implements the paper's dynamic attributes (§2.1): "a
// dynamic attribute A is represented by three sub-attributes, A.value,
// A.updatetime, and A.function, where A.function is a function of a single
// variable t that has value 0 at t = 0.  At time A.updatetime the value of
// A is A.value, and until the next update of A the value of A at time
// A.updatetime + t0 is given by A.value + A.function(t0)."
//
// Functions are piecewise polynomial: linear pieces are the paper's base
// case ("for the sake of simplicity we assume that the functions are
// linear"), and quadratic pieces — uniformly accelerating attributes — are
// the nonlinear extension §4 anticipates ("the ideas can be extended to
// nonlinear functions").  Range predicates, comparisons and both index
// mechanisms solve quadratic pieces exactly; spatial POSITION attributes
// remain piecewise linear (the kinetic polygon/distance solvers work on
// straight paths).
package motion

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Piece is one polynomial segment of a Func: for offsets t in [Start, end
// of piece), the instantaneous rate of change is Slope + Accel*(t-Start).
// The value at Start is implied by continuity from the preceding pieces
// (Func has value 0 at offset 0).  Linear motion has Accel == 0; a nonzero
// Accel gives the quadratic (uniformly accelerating) extension the paper's
// §4 anticipates: "the ideas can be extended to nonlinear functions".
type Piece struct {
	Start float64 // offset at which this piece begins
	Slope float64 // value change per clock tick at the piece start
	Accel float64 // change of the slope per clock tick
}

// Func is a continuous piecewise-polynomial (linear or quadratic) function
// of a single variable t with f(0) = 0, defined for t >= 0 (the paper's
// A.function).  The zero value is the constant-zero function.  Funcs are
// immutable.
type Func struct {
	pieces []Piece // sorted by Start; empty means identically zero
}

// Linear returns the single-slope function f(t) = slope * t — the common
// case: "the objects whose speed in the X direction is 5" have
// X.POSITION.function = 5*t (§2.1).
func Linear(slope float64) Func {
	if slope == 0 {
		return Func{}
	}
	return Func{pieces: []Piece{{Start: 0, Slope: slope}}}
}

// Constant returns the identically-zero function (a parked object).
func Constant() Func { return Func{} }

// Accelerating returns the single-piece quadratic function
// f(t) = slope*t + accel*t^2/2 — an object with initial speed slope and
// constant acceleration.
func Accelerating(slope, accel float64) Func {
	if slope == 0 && accel == 0 {
		return Func{}
	}
	return Func{pieces: []Piece{{Start: 0, Slope: slope, Accel: accel}}}
}

// NewFunc builds a piecewise-polynomial function from pieces.  Pieces must have
// non-negative, strictly increasing Start offsets; if the first piece does
// not start at 0 a zero-slope lead-in is implied.
func NewFunc(pieces ...Piece) (Func, error) {
	ps := make([]Piece, len(pieces))
	copy(ps, pieces)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
	for i, p := range ps {
		if p.Start < 0 {
			return Func{}, fmt.Errorf("motion: piece %d starts at negative offset %v", i, p.Start)
		}
		if i > 0 && p.Start == ps[i-1].Start {
			return Func{}, fmt.Errorf("motion: duplicate piece offset %v", p.Start)
		}
	}
	if len(ps) > 0 && ps[0].Start > 0 {
		ps = append([]Piece{{Start: 0, Slope: 0}}, ps...)
	}
	return Func{pieces: ps}, nil
}

// MustFunc is NewFunc that panics on error; for literals.
func MustFunc(pieces ...Piece) Func {
	f, err := NewFunc(pieces...)
	if err != nil {
		panic(err)
	}
	return f
}

// Pieces returns the function's pieces; the slice must not be modified.
func (f Func) Pieces() []Piece { return f.pieces }

// IsZero reports whether the function is identically zero.
func (f Func) IsZero() bool {
	for _, p := range f.pieces {
		if p.Slope != 0 || p.Accel != 0 {
			return false
		}
	}
	return true
}

// IsLinear reports whether every piece has zero acceleration.  Spatial
// POSITION attributes require linear pieces (the kinetic polygon and
// distance solvers work on straight paths).
func (f Func) IsLinear() bool {
	for _, p := range f.pieces {
		if p.Accel != 0 {
			return false
		}
	}
	return true
}

// Value returns f(t).  For t < 0 (queries about instants before the last
// update, which the MOST future-history semantics never produces) the first
// piece is extrapolated backwards.
func (f Func) Value(t float64) float64 {
	if len(f.pieces) == 0 {
		return 0
	}
	var v float64
	for i, p := range f.pieces {
		end := math.Inf(1)
		if i+1 < len(f.pieces) {
			end = f.pieces[i+1].Start
		}
		if t <= end || i == len(f.pieces)-1 {
			d := t - p.Start
			return v + p.Slope*d + p.Accel*d*d/2
		}
		d := end - p.Start
		v += p.Slope*d + p.Accel*d*d/2
	}
	return v
}

// SlopeAt returns the slope in effect at offset t (the object's speed along
// this attribute).  At a breakpoint the incoming piece's slope is reported
// for t exactly at a piece start the new slope applies.
func (f Func) SlopeAt(t float64) float64 {
	if len(f.pieces) == 0 {
		return 0
	}
	i := sort.Search(len(f.pieces), func(i int) bool { return f.pieces[i].Start > t })
	if i == 0 {
		i = 1
	}
	p := f.pieces[i-1]
	return p.Slope + p.Accel*(t-p.Start)
}

// Scale returns the function t -> k * f(t).
func (f Func) Scale(k float64) Func {
	if len(f.pieces) == 0 || k == 1 {
		return f
	}
	out := make([]Piece, len(f.pieces))
	for i, p := range f.pieces {
		out[i] = Piece{Start: p.Start, Slope: p.Slope * k, Accel: p.Accel * k}
	}
	return Func{pieces: out}
}

// Equal reports whether two functions have identical pieces (after zero
// normalization they represent the same function).
func (f Func) Equal(g Func) bool {
	if f.IsZero() && g.IsZero() {
		return true
	}
	if len(f.pieces) != len(g.pieces) {
		return false
	}
	for i := range f.pieces {
		if f.pieces[i] != g.pieces[i] {
			return false
		}
	}
	return true
}

// String renders the function as "5t", "{0:1t, 3:2t}", or with quadratic
// pieces "{0:5t+1t2}" (meaning slope 5, acceleration 1).
func (f Func) String() string {
	if f.IsZero() {
		return "0"
	}
	if len(f.pieces) == 1 && f.pieces[0].Start == 0 && f.pieces[0].Accel == 0 {
		return fmt.Sprintf("%gt", f.pieces[0].Slope)
	}
	parts := make([]string, len(f.pieces))
	for i, p := range f.pieces {
		if p.Accel != 0 {
			parts[i] = fmt.Sprintf("%g:%gt%+gt2", p.Start, p.Slope, p.Accel)
		} else {
			parts[i] = fmt.Sprintf("%g:%gt", p.Start, p.Slope)
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
