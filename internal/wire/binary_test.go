package wire

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/mostdb/most/internal/temporal"
)

// roundTrip encodes in at version v, runs it through a full frame
// encode/decode, and unmarshals into a fresh value.
func roundTrip[T any](t *testing.T, v uint8, op Opcode, in *T) *T {
	t.Helper()
	f, err := EncodeFrame(v, op, 7, in)
	if err != nil {
		t.Fatalf("encode v%d %T: %v", v, in, err)
	}
	buf, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewDecoder(bytes.NewReader(buf), 0).Next()
	if err != nil {
		t.Fatalf("decode v%d %T: %v", v, in, err)
	}
	if g.Version != v {
		t.Fatalf("frame version %d, want %d", g.Version, v)
	}
	out := new(T)
	if err := Unmarshal(g, out); err != nil {
		t.Fatalf("unmarshal v%d %T: %v", v, in, err)
	}
	return out
}

// bothVersions asserts the payload decodes to the same struct through the
// v1 JSON and v2 binary encodings.
func bothVersions[T any](t *testing.T, op Opcode, in *T) {
	t.Helper()
	v1 := roundTrip(t, ProtocolV1, op, in)
	v2 := roundTrip(t, ProtocolV2, op, in)
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("encodings disagree for %T:\n v1: %#v\n v2: %#v", in, v1, v2)
	}
	if !reflect.DeepEqual(v2, in) {
		t.Fatalf("v2 round trip changed %T:\n in:  %#v\n out: %#v", in, in, v2)
	}
}

func TestBinaryPayloadsMatchJSONPayloads(t *testing.T) {
	vals := []Value{
		{Kind: 1, Obj: "car-00017"},
		{Kind: 2, Num: -math.MaxFloat64},
		{Kind: 2, Num: 0.1 + 0.2}, // not representable exactly: bits must survive
		{Kind: 3, Str: "hello\x00world — ünïcode"},
		{Kind: 4, Bool: true},
		{},
	}
	rows := []AnswerRow{
		{Vals: vals, Start: -3, End: temporal.Tick(math.MaxInt64)},
		{Start: 5, End: 5},
	}
	val := Value{Kind: 2, Num: 99}

	bothVersions(t, OpQuery, &QueryReq{Src: "RETRIEVE o FROM Vehicles o WHERE TRUE", Horizon: 50})
	bothVersions(t, OpQuery, &QueryReq{Src: "RETRIEVE o FROM Vehicles o WHERE TRUE", Horizon: 50, DeadlineMS: 1500})
	bothVersions(t, OpResult, &QueryResp{Now: 12, Rows: [][]Value{vals, {vals[0]}}})
	bothVersions(t, OpUpdateBatch, &UpdateBatchReq{DeadlineMS: 250, Ops: []UpdateOp{
		{Op: OpSetMotion, ID: "car-1", VX: 1.5, VY: -2.25},
		{Op: OpSetStatic, ID: "car-2", Attr: "PRICE", Value: &val},
		{Op: OpSetStatic, ID: "car-2", Attr: "FLAG"},
		{Op: OpInsert, ID: "car-3", Object: json.RawMessage(`{"id":"car-3"}`)},
		{Op: OpDelete, ID: "car-1"},
	}})
	bothVersions(t, OpResult, &UpdateBatchResp{Applied: 5, Now: 9, Version: 1 << 40})
	bothVersions(t, OpAdvance, &AdvanceReq{D: 17})
	bothVersions(t, OpResult, &AdvanceResp{Now: 17})
	bothVersions(t, OpObjects, &ObjectsReq{Class: "Vehicles"})
	bothVersions(t, OpResult, &ObjectsResp{Now: 3, Objects: []ObjectInfo{
		{ID: "a", Class: "Vehicles", HasPos: true, X: 1.25, Y: -9},
		{ID: "b", Class: "Motels"},
	}})
	bothVersions(t, OpSnapshotLoad, &SnapshotLoadReq{Data: json.RawMessage(`{"now":4}`)})
	bothVersions(t, OpResult, &SnapshotLoadResp{Now: 4, Objects: 7})
	bothVersions(t, OpResult, &SnapshotResp{Data: json.RawMessage(`{"now":4}`)})
	bothVersions(t, OpSubscribe, &SubscribeReq{Src: "RETRIEVE o FROM Vehicles o WHERE TRUE", Horizon: 9})
	bothVersions(t, OpResult, &SubscribeResp{SubID: 3, Now: 2, Answer: rows})
	bothVersions(t, OpUnsubscribe, &UnsubscribeReq{SubID: 3})
	bothVersions(t, OpNotify, &Notify{SubID: 3, Seq: 41, Answer: rows})
	bothVersions(t, OpSubClosed, &SubClosed{SubID: 3, Reason: "database replaced"})
	bothVersions(t, OpError, &ErrorResp{Msg: "no such object"})
	bothVersions(t, OpError, &ErrorResp{Msg: "shed by admission control", Code: CodeOverloaded})
}

// Float64 payloads must survive bit-exactly, including NaN payloads and
// negative zero, which DeepEqual cannot check.
func TestBinaryFloat64BitExact(t *testing.T) {
	for _, bits := range []uint64{
		math.Float64bits(math.NaN()),
		0x7ff8000000000001, // NaN with a payload
		math.Float64bits(math.Copysign(0, -1)),
		math.Float64bits(math.Inf(1)),
	} {
		in := Value{Kind: 2, Num: math.Float64frombits(bits)}
		var out Value
		r := binReader{data: in.appendBinary(nil)}
		if err := out.decodeBinary(&r); err != nil {
			t.Fatal(err)
		}
		if got := math.Float64bits(out.Num); got != bits {
			t.Fatalf("float bits %#x decoded as %#x", bits, got)
		}
	}
}

// An op kind v2 cannot express must fail loudly on decode, not silently
// drop or mangle the op.
func TestBinaryUnknownUpdateOpRejected(t *testing.T) {
	bad := UpdateOp{Op: "explode", ID: "car-1"}
	f, err := EncodeFrame(ProtocolV2, OpUpdateBatch, 1, &UpdateBatchReq{Ops: []UpdateOp{bad}})
	if err != nil {
		t.Fatal(err)
	}
	var out UpdateBatchReq
	if err := Unmarshal(f, &out); err == nil {
		t.Fatal("unknown op kind decoded without error")
	}
}

// A hostile element count far beyond the actual payload must be rejected
// by the count-vs-remaining check, not trigger a huge allocation.
func TestBinaryHostileCountRejected(t *testing.T) {
	buf := appendU32(appendI64(nil, 0), 1<<31) // one billion ops declared, zero bytes present
	f := Frame{Op: OpUpdateBatch, ID: 1, Version: ProtocolV2, Payload: buf}
	var out UpdateBatchReq
	err := Unmarshal(f, &out)
	if err == nil {
		t.Fatal("hostile count decoded without error")
	}
	if !strings.Contains(err.Error(), "count") {
		t.Fatalf("want count-bound error, got: %v", err)
	}
}

// Trailing bytes after a well-formed v2 payload are a framing error.
func TestBinaryTrailingBytesRejected(t *testing.T) {
	req := AdvanceReq{D: 4}
	payload := append(req.appendBinary(nil), 0xEE)
	f := Frame{Op: OpAdvance, ID: 1, Version: ProtocolV2, Payload: payload}
	var out AdvanceReq
	if err := Unmarshal(f, &out); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
}

// Truncations at every prefix length must error, never panic.
func TestBinaryTruncationsError(t *testing.T) {
	full, err := EncodeFrame(ProtocolV2, OpNotify, 0, &Notify{
		SubID: 1, Seq: 2,
		Answer: []AnswerRow{{Vals: []Value{{Kind: 1, Obj: "x"}}, Start: 1, End: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// i starts at 1: a zero-length payload is the legal "no payload" frame.
	for i := 1; i < len(full.Payload); i++ {
		f := Frame{Op: OpNotify, Version: ProtocolV2, Payload: full.Payload[:i]}
		var out Notify
		if err := Unmarshal(f, &out); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", i, len(full.Payload))
		}
	}
}

func TestNegotiateVersion(t *testing.T) {
	cases := []struct {
		clientMax, serverMax int
		want                 uint8
	}{
		{0, 2, 1},   // pre-v2 client omits the field
		{1, 2, 1},   // v1 client against v2 server
		{2, 1, 1},   // v2 client against v1-capped server: graceful downgrade
		{2, 2, 2},   // both speak v2
		{99, 99, 2}, // futures clamp to what we implement
		{-5, 2, 1},  // nonsense clamps up to v1
		{2, 0, 1},   // unconfigured server max means v1
	}
	for _, tc := range cases {
		if got := NegotiateVersion(tc.clientMax, tc.serverMax); got != tc.want {
			t.Errorf("NegotiateVersion(%d, %d) = %d, want %d", tc.clientMax, tc.serverMax, got, tc.want)
		}
	}
}

// Pooled frames must detach into stable copies before the pool reclaims
// the buffer — the idempotence cache depends on this.
func TestEncodePooledDetachAndRecycle(t *testing.T) {
	f, err := EncodePooled(ProtocolV2, OpResult, 1, &UpdateBatchResp{Applied: 3, Now: 9, Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	kept := f.Detach()
	want := append([]byte(nil), f.Payload...)
	Recycle(f)
	// Reuse the pool slot and scribble over it.
	g, err := EncodePooled(ProtocolV2, OpResult, 2, &UpdateBatchResp{Applied: 999999, Now: -1, Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(kept.Payload, want) {
		t.Fatal("detached frame changed after its pooled original was recycled")
	}
	var out UpdateBatchResp
	if err := Unmarshal(kept, &out); err != nil || out.Applied != 3 {
		t.Fatalf("detached frame undecodable: %v, %+v", err, out)
	}
	Recycle(g)
}

// The interner must return identical string instances for recurring IDs
// and stay bounded against an adversary cycling unique IDs.
func TestInterner(t *testing.T) {
	in := Interner{}
	a := in.Intern([]byte("car-1"))
	b := in.Intern([]byte("car-1"))
	if a != b {
		t.Fatal("interner returned unequal strings")
	}
	if len(in) != 1 {
		t.Fatalf("interner holds %d entries, want 1", len(in))
	}
	if got := Interner(nil).Intern([]byte("x")); got != "x" {
		t.Fatalf("nil interner returned %q", got)
	}
}

// Decoding into a reused struct must not leak fields from a previous op
// of a different kind.
func TestBinaryDecodeIntoReusedStruct(t *testing.T) {
	first := UpdateBatchReq{Ops: []UpdateOp{{
		Op: OpSetStatic, ID: "car-1", Attr: "PRICE", Value: &Value{Kind: 2, Num: 9},
	}}}
	second := UpdateBatchReq{Ops: []UpdateOp{{Op: OpSetMotion, ID: "car-2", VX: 1, VY: 2}}}
	var dst UpdateBatchReq
	in := Interner{}
	for _, req := range []*UpdateBatchReq{&first, &second} {
		f, err := EncodeFrame(ProtocolV2, OpUpdateBatch, 1, req)
		if err != nil {
			t.Fatal(err)
		}
		dst.Ops = dst.Ops[:0]
		if err := UnmarshalInterned(f, &dst, in); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dst.Ops, req.Ops) {
			t.Fatalf("reused decode diverged:\n got:  %#v\n want: %#v", dst.Ops, req.Ops)
		}
	}
	if dst.Ops[0].Attr != "" || dst.Ops[0].Value != nil {
		t.Fatal("fields leaked from previous op kind")
	}
}
