package geom

import (
	"errors"
	"math"
)

// Polygon is a simple polygon in the XY plane, given by its vertices in
// order (either orientation).  The closing edge from the last vertex back
// to the first is implicit.  Polygons are the region arguments of the
// paper's INSIDE and OUTSIDE spatial methods.
type Polygon struct {
	vertices []Point
}

// ErrDegeneratePolygon is returned for polygons with fewer than 3 vertices.
var ErrDegeneratePolygon = errors.New("geom: polygon needs at least 3 vertices")

// NewPolygon builds a polygon from the given vertices (Z is ignored).
func NewPolygon(vertices ...Point) (Polygon, error) {
	if len(vertices) < 3 {
		return Polygon{}, ErrDegeneratePolygon
	}
	vs := make([]Point, len(vertices))
	copy(vs, vertices)
	return Polygon{vertices: vs}, nil
}

// MustPolygon is NewPolygon that panics on error; for literals in tests,
// examples and workload generators.
func MustPolygon(vertices ...Point) Polygon {
	p, err := NewPolygon(vertices...)
	if err != nil {
		panic(err)
	}
	return p
}

// RectPolygon returns the axis-aligned rectangle [x0,x1] x [y0,y1] as a
// polygon.
func RectPolygon(x0, y0, x1, y1 float64) Polygon {
	return MustPolygon(Point{X: x0, Y: y0}, Point{X: x1, Y: y0}, Point{X: x1, Y: y1}, Point{X: x0, Y: y1})
}

// RegularPolygon returns an n-gon centred at c with circumradius r.
func RegularPolygon(c Point, r float64, n int) Polygon {
	vs := make([]Point, n)
	for i := range vs {
		a := 2 * math.Pi * float64(i) / float64(n)
		vs[i] = Point{X: c.X + r*math.Cos(a), Y: c.Y + r*math.Sin(a)}
	}
	return MustPolygon(vs...)
}

// Vertices returns the polygon's vertices; the slice must not be modified.
func (pg Polygon) Vertices() []Point { return pg.vertices }

// Len returns the number of vertices.
func (pg Polygon) Len() int { return len(pg.vertices) }

// Bounds returns the axis-aligned bounding box of the polygon.
func (pg Polygon) Bounds() Rect {
	r := Rect{Min: pg.vertices[0], Max: pg.vertices[0]}
	for _, v := range pg.vertices[1:] {
		r = r.Expand(v)
	}
	return r
}

// Area returns the (positive) area via the shoelace formula.
func (pg Polygon) Area() float64 {
	var s float64
	n := len(pg.vertices)
	for i := 0; i < n; i++ {
		a, b := pg.vertices[i], pg.vertices[(i+1)%n]
		s += a.X*b.Y - b.X*a.Y
	}
	return math.Abs(s) / 2
}

// Centroid returns the area centroid of the polygon.
func (pg Polygon) Centroid() Point {
	var cx, cy, s float64
	n := len(pg.vertices)
	for i := 0; i < n; i++ {
		a, b := pg.vertices[i], pg.vertices[(i+1)%n]
		cross := a.X*b.Y - b.X*a.Y
		s += cross
		cx += (a.X + b.X) * cross
		cy += (a.Y + b.Y) * cross
	}
	if s == 0 {
		return pg.vertices[0]
	}
	return Point{X: cx / (3 * s), Y: cy / (3 * s)}
}

// Contains implements the paper's INSIDE(o, P) spatial method for a static
// point: it reports whether p lies inside the polygon, boundary included.
// It uses the even-odd ray-casting rule with an explicit on-edge check so
// the boundary is handled deterministically.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.vertices)
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg.vertices[j], pg.vertices[i]
		if onSegment(p, a, b) {
			return true
		}
		if (b.Y > p.Y) != (a.Y > p.Y) {
			xCross := (a.X-b.X)*(p.Y-b.Y)/(a.Y-b.Y) + b.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// onSegment reports whether p lies on the closed segment ab (XY only).
func onSegment(p, a, b Point) bool {
	const eps = 1e-12
	cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
	if math.Abs(cross) > eps*math.Max(1, math.Max(math.Abs(b.X-a.X), math.Abs(b.Y-a.Y))) {
		return false
	}
	dot := (p.X-a.X)*(b.X-a.X) + (p.Y-a.Y)*(b.Y-a.Y)
	if dot < -eps {
		return false
	}
	return dot <= (b.X-a.X)*(b.X-a.X)+(b.Y-a.Y)*(b.Y-a.Y)+eps
}

// IsConvex reports whether the polygon is convex (collinear edges allowed).
func (pg Polygon) IsConvex() bool {
	n := len(pg.vertices)
	sign := 0
	for i := 0; i < n; i++ {
		a, b, c := pg.vertices[i], pg.vertices[(i+1)%n], pg.vertices[(i+2)%n]
		cross := (b.X-a.X)*(c.Y-b.Y) - (b.Y-a.Y)*(c.X-b.X)
		if cross == 0 {
			continue
		}
		s := 1
		if cross < 0 {
			s = -1
		}
		if sign == 0 {
			sign = s
		} else if s != sign {
			return false
		}
	}
	return true
}
