package query

import (
	"sync"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/temporal"
)

// Continuous is a registered continuous query: Answer(CQ) is materialized
// once at registration and maintained under explicit updates.  Between
// updates, presentation at each clock tick is a lookup, not a reevaluation
// — the paper's central efficiency claim for continuous queries ("our query
// processing algorithm facilitates a single evaluation of the query;
// reevaluation has to occur only if the motion vector of the car changes").
//
// Maintenance is incremental where the query shape allows it: an update to
// object o patches only the tuples binding o (see delta.go), falling back
// to a full reevaluation for non-decomposable queries, unbounded temporal
// operators, errored state, or when the evaluation window has drifted too
// far from the last full anchor.
type Continuous struct {
	id     int
	engine *Engine
	query  *ftl.Query
	opts   Options
	plan   deltaPlan

	mu        sync.Mutex
	answer    *eval.Relation
	err       error
	listeners []func(*eval.Relation)
	cancelled bool

	// version is the database version (update-log length) the materialized
	// answer reflects; installs are monotonic in it, so a slow evaluation
	// finishing late never overwrites a newer answer.  anchor is the
	// database time of the last full evaluation: every tuple's satisfaction
	// set was computed over a window starting no earlier than anchor, so
	// with a bounded formula the answer stays presentable through
	// anchor+horizon-depth (after which drain re-anchors with a full run).
	version uint64
	anchor  temporal.Tick

	// evaluating serializes maintenance: exactly one goroutine drains at a
	// time.  queue holds delta-maintainable updates awaiting application;
	// needFull coalesces every other update into one full reevaluation.
	// This generalizes the previous evaluating/pending scheme: K queued
	// updates to distinct objects become K cheap per-object patches in one
	// round instead of K full joins.
	evaluating bool
	needFull   bool
	queue      []most.Update

	// classes the query ranges over: used to skip irrelevant updates.
	classes map[string]bool
}

// Continuous registers a continuous query, evaluating it once.
func (e *Engine) Continuous(q *ftl.Query, opts Options) (*Continuous, error) {
	cq := &Continuous{engine: e, query: q, opts: opts, classes: map[string]bool{}}
	for _, b := range q.Bindings {
		cq.classes[b.Class] = true
	}
	cq.plan = newDeltaPlan(q)

	// Register before the initial evaluation, holding the maintenance loop
	// (evaluating=true), so an update committed between the initial
	// snapshot and the map insertion is queued and applied by the drain
	// below instead of being lost: the update's log append either precedes
	// the Version read (and is in the evaluated snapshot) or follows the
	// map insertion (and its onUpdate finds the handle).
	cq.evaluating = true
	e.mu.Lock()
	e.nextID++
	cq.id = e.nextID
	e.continuous[cq.id] = cq
	e.mu.Unlock()
	v := e.db.Version()
	rel, now, err := cq.evaluate()
	if err != nil {
		e.mu.Lock()
		delete(e.continuous, cq.id)
		e.mu.Unlock()
		return nil, err
	}
	cq.mu.Lock()
	cq.answer, cq.version, cq.anchor = rel, v, now
	cq.mu.Unlock()
	cq.drain()
	return cq, nil
}

// Answer returns the materialized Answer(CQ) relation.
func (cq *Continuous) Answer() (*eval.Relation, error) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if cq.cancelled {
		return nil, errUnregistered
	}
	return cq.answer, cq.err
}

// Current returns the instantiations presented at tick t: "the system
// presents to the user at each clock-tick t the instantiations of the
// tuples having an interval that contains t" (§3.5).
func (cq *Continuous) Current(t temporal.Tick) ([]Row, error) {
	rel, err := cq.Answer()
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, vals := range rel.At(t) {
		rows = append(rows, Row(vals))
	}
	return rows, nil
}

// Subscribe registers a listener invoked with the new Answer(CQ) after
// every maintenance round (full reevaluation or delta patch).  Coupled
// with an action this is a temporal trigger (§2.3).  On a cancelled handle
// it reports errUnregistered, consistent with Answer, and the listener is
// dropped.
func (cq *Continuous) Subscribe(fn func(*eval.Relation)) error {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if cq.cancelled {
		return errUnregistered
	}
	cq.listeners = append(cq.listeners, fn)
	return nil
}

// Cancel unregisters the query ("until cancelled", §2.3).
func (cq *Continuous) Cancel() {
	cq.engine.mu.Lock()
	delete(cq.engine.continuous, cq.id)
	cq.engine.mu.Unlock()
	cq.mu.Lock()
	cq.cancelled = true
	cq.mu.Unlock()
}

// relevant reports whether an update may change Answer(CQ).  Updates to
// objects of classes the query does not range over cannot affect it.
func (cq *Continuous) relevant(u most.Update) bool {
	class := updateClass(u)
	if class == "" {
		return true
	}
	return cq.classes[class]
}

// evaluate runs one full evaluation of the query under the continuous
// query's own root span and metrics, returning the relation and the tick
// it was anchored at.
func (cq *Continuous) evaluate() (*eval.Relation, temporal.Tick, error) {
	e := cq.engine
	reg := e.reg()
	reg.Counter("query.continuous").Inc()
	sp := reg.StartSpan("query.continuous")
	defer sp.End()
	t0 := reg.Start()
	defer reg.Histogram("query.continuous_ns").Since(t0)
	now := e.db.Now()
	rel, err := e.evalRelation(cq.query, cq.opts, now, sp)
	return rel, now, err
}

// maintain folds one relevant update into the maintenance state and, if no
// other goroutine is draining, drains.  Concurrent calls coalesce exactly
// as reevaluate used to: one goroutine works at a time and the others just
// deposit their update.  With a single caller this reduces to one delta
// patch (or one full reevaluation) per call — the sequential semantics.
func (cq *Continuous) maintain(u most.Update) {
	cq.mu.Lock()
	if cq.cancelled {
		cq.mu.Unlock()
		return
	}
	switch {
	case cq.needFull:
		// A full reevaluation is already scheduled; it covers this update.
	case cq.deltable(u):
		cq.queue = append(cq.queue, u)
	default:
		if !cq.opts.DisableDelta {
			cq.engine.reg().Counter("query.continuous.fallback").Inc()
		}
		cq.needFull = true
		cq.queue = nil
	}
	if cq.evaluating {
		cq.mu.Unlock()
		return
	}
	cq.evaluating = true
	cq.mu.Unlock()
	cq.drain()
}

// deltable reports whether u can be applied as a per-object patch.  Callers
// hold cq.mu.
func (cq *Continuous) deltable(u most.Update) bool {
	if cq.opts.DisableDelta {
		return false
	}
	return cq.plan.deltable(u, cq.opts.horizon())
}

// drain runs maintenance rounds until no work is queued.  The caller must
// have won the evaluating flag.  Each round applies the queued updates as
// per-object deltas, or runs one full reevaluation when a fallback
// condition holds: needFull was set, the materialized state is errored or
// missing, the clock has advanced past the last full anchor's validity
// (now > anchor+horizon-depth), or the delta application itself failed.
func (cq *Continuous) drain() {
	for {
		cq.mu.Lock()
		if cq.cancelled {
			cq.evaluating, cq.needFull, cq.queue = false, false, nil
			cq.mu.Unlock()
			return
		}
		full := cq.needFull
		batch := cq.queue
		cq.needFull, cq.queue = false, nil
		if !full && len(batch) == 0 {
			cq.evaluating = false
			cq.mu.Unlock()
			return
		}
		if !full && (cq.err != nil || cq.answer == nil) {
			full = true
		}
		anchor := cq.anchor
		cq.mu.Unlock()
		if !full && cq.engine.db.Now() > anchor.Add(cq.opts.horizon()-cq.plan.analysis.Depth) {
			// Unchanged tuples are no longer presentable this far past the
			// anchor: re-anchor the whole relation.
			full = true
		}
		if full {
			cq.runFull()
			continue
		}
		if !cq.runDelta(batch) {
			cq.runFull()
		}
	}
}

// runFull recomputes Answer(CQ) from the current state and installs it
// under the version guard, so a slow evaluation finishing late never
// overwrites a newer answer.
func (cq *Continuous) runFull() {
	e := cq.engine
	reg := e.reg()
	reg.Counter("query.continuous.reevals").Inc()
	reg.Counter("query.continuous.full").Inc()
	// The version is read before the snapshot, so the evaluated state is
	// at least as new as v and the install guard stays conservative.
	v := e.db.Version()
	rel, now, err := cq.evaluate()
	cq.mu.Lock()
	if cq.cancelled {
		cq.mu.Unlock()
		return
	}
	var ls []func(*eval.Relation)
	if v >= cq.version {
		cq.version = v
		cq.answer, cq.err = rel, err
		cq.anchor = now
		if err == nil {
			ls = append([]func(*eval.Relation){}, cq.listeners...)
		}
	}
	cq.mu.Unlock()
	for _, fn := range ls {
		fn(rel)
	}
}
