package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/temporal"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpPing, ID: 1},
		{Op: OpQuery, ID: 42, Payload: []byte(`{"src":"RETRIEVE o FROM Vehicles o WHERE TRUE"}`)},
		{Op: OpNotify, ID: 0, Payload: bytes.Repeat([]byte("x"), 100000)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDecoder(&buf, 0)
	for i, want := range frames {
		got, err := d.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %v/%d/%d bytes, want %v/%d/%d bytes",
				i, got.Op, got.ID, len(got.Payload), want.Op, want.ID, len(want.Payload))
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("at end: got %v, want io.EOF", err)
	}
}

func TestDecoderRejectsMalformed(t *testing.T) {
	valid, err := AppendFrame(nil, Frame{Op: OpPing, ID: 7, Payload: []byte("{}")})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(i int, b byte) []byte {
		out := append([]byte(nil), valid...)
		out[i] = b
		return out
	}
	oversized := append([]byte(nil), valid[:HeaderSize]...)
	binary.BigEndian.PutUint32(oversized[12:16], 1<<30)

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"bad magic", corrupt(0, 'X'), ErrBadFrame},
		{"bad version", corrupt(2, 99), ErrBadFrame},
		{"bad opcode", corrupt(3, 200), ErrBadFrame},
		{"oversized", oversized, ErrTooLarge},
		{"truncated header", valid[:5], io.ErrUnexpectedEOF},
		{"truncated payload", valid[:len(valid)-1], io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDecoder(bytes.NewReader(tc.in), 1<<20)
			_, err := d.Next()
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecoderPayloadBound(t *testing.T) {
	f := Frame{Op: OpQuery, ID: 1, Payload: bytes.Repeat([]byte("a"), 2048)}
	buf, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(buf), 1024)
	if _, err := d.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []eval.Val{
		eval.ObjVal("car-00001"),
		eval.NumVal(3.141592653589793),
		eval.NumVal(-0.1),
		eval.StrVal("hello\x00world"),
		eval.BoolVal(true),
		{},
	}
	for _, v := range vals {
		got := FromVal(v).Val()
		if got != v {
			t.Fatalf("round trip changed %#v to %#v", v, got)
		}
	}
}

func TestRowsAtAndCanonical(t *testing.T) {
	answer := []AnswerRow{
		{Vals: []Value{FromVal(eval.ObjVal("a"))}, Start: 0, End: 10},
		{Vals: []Value{FromVal(eval.ObjVal("b"))}, Start: 5, End: 5},
	}
	if rows := RowsAt(answer, 5); len(rows) != 2 {
		t.Fatalf("at 5: %d rows, want 2", len(rows))
	}
	if rows := RowsAt(answer, temporal.Tick(11)); len(rows) != 0 {
		t.Fatalf("at 11: %d rows, want 0", len(rows))
	}
	// Canonical form is order-independent.
	rev := []AnswerRow{answer[1], answer[0]}
	if CanonicalAnswers(answer) != CanonicalAnswers(rev) {
		t.Fatal("canonical form depends on order")
	}
}
