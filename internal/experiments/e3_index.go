package experiments

import (
	"fmt"
	"math/rand"

	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// indexedFleet builds an AttrIndex over n one-dimensional trajectories and
// returns it with the ground-truth attributes.
func indexedFleet(n int, horizon temporal.Tick, maxSpeed float64, seed int64) (*index.AttrIndex, map[most.ObjectID]motion.DynamicAttr) {
	r := rand.New(rand.NewSource(seed))
	ix := index.NewAttrIndex(0, horizon)
	attrs := make(map[most.ObjectID]motion.DynamicAttr, n)
	for i := 0; i < n; i++ {
		id := most.ObjectID(fmt.Sprintf("o%06d", i))
		attrs[id] = motion.DynamicAttr{
			Value:    r.Float64()*2000 - 1000,
			Function: motion.Linear(r.Float64()*2*maxSpeed - maxSpeed),
		}
	}
	// Bulk construction, as the §4 periodic reconstruction would do.
	ix.Rebuild(0, attrs)
	return ix, attrs
}

// scanRange answers the same instantaneous range query by examining every
// object — the baseline the paper's §4 index avoids ("the objective is to
// enable answering queries ... without examining all the objects").
func scanRange(attrs map[most.ObjectID]motion.DynamicAttr, lo, hi float64, at temporal.Tick) int {
	n := 0
	for _, a := range attrs {
		if v := a.At(at); v >= lo && v <= hi {
			n++
		}
	}
	return n
}

// E3IndexVsScan measures instantaneous range queries through the dynamic-
// attribute index against a full scan, over growing fleets.
func E3IndexVsScan(quick bool) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "instantaneous range query: §4 index probe vs full scan",
		Claim:   "the index answers in time logarithmic in the number of objects; the scan grows linearly",
		Columns: []string{"objects", "matches", "scan", "index", "speedup", "tree height"},
	}
	sizes := []int{1000, 10000, 100000}
	reps := 200
	if quick {
		sizes = []int{1000, 10000}
		reps = 50
	}
	const horizon = temporal.Tick(1000)
	for _, n := range sizes {
		ix, attrs := indexedFleet(n, horizon, 3, 5)
		lo, hi := 100.0, 104.0
		at := temporal.Tick(500)
		matches := scanRange(attrs, lo, hi, at)
		scanT := timeIt(reps, func() { scanRange(attrs, lo, hi, at) })
		idxT := timeIt(reps, func() { ix.InstantQuery(lo, hi, at) })
		got := len(ix.InstantQuery(lo, hi, at))
		if got != matches {
			panic(fmt.Sprintf("E3: index answered %d, scan %d", got, matches))
		}
		t.AddRow(itoa(n), itoa(matches), ns(scanT), ns(idxT),
			f2(float64(scanT)/float64(idxT))+"x", itoa(treeHeight(ix)))
	}
	t.Notes = append(t.Notes, "index and scan answers are cross-checked for equality on every run")
	return t
}

// treeHeight exposes the R-tree height through a tiny helper (the index
// wraps the tree).
func treeHeight(ix *index.AttrIndex) int { return ix.TreeHeight() }
