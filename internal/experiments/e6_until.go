package experiments

import (
	"math/rand"

	"github.com/mostdb/most/internal/temporal"
)

// E6UntilJoin exercises the appendix's Until computation: the pairwise
// scheme whose cost is "in the worst case ... proportional to the product
// of the sizes of R1 and R2", against the closed-form linear merge the
// production evaluator uses.  Both produce identical interval sets.
func E6UntilJoin(quick bool) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Until over per-instantiation interval sets: pairwise (appendix) vs linear merge",
		Claim:   "the pairwise algorithm scales with |I1| x |I2|; the merge is linear; results are identical",
		Columns: []string{"intervals/side", "pairwise", "linear merge", "ratio"},
	}
	sizes := []int{64, 256, 1024, 4096}
	if quick {
		sizes = []int{64, 256, 1024}
	}
	for _, n := range sizes {
		f, h := denseAlternation(n)
		w := temporal.Interval{Start: 0, End: temporal.Tick(16 * n)}
		// Sanity: same answer.
		if !temporal.UntilChains(f, h, w).Equal(temporal.Until(f, h, w)) {
			panic("E6: algorithms disagree")
		}
		reps := 200000 / n
		quad := timeIt(reps, func() { temporal.UntilChains(f, h, w) })
		lin := timeIt(reps, func() { temporal.Until(f, h, w) })
		t.AddRow(itoa(n), ns(quad), ns(lin), f2(float64(quad)/float64(lin))+"x")
	}
	t.Notes = append(t.Notes,
		"the worst case interleaves every h-interval start-compatibly inside one long f-run per block, forcing the pairwise scan to touch all pairs in a block")
	return t
}

// denseAlternation builds n disjoint f-runs, each containing an h-interval
// (plus random extra h's).  The pairwise algorithm's inner loop visits all
// h-intervals for every f-run, i.e. |I1| x |I2| comparisons; the linear
// merge does one coordinated pass.
func denseAlternation(n int) (f, h temporal.Set) {
	r := rand.New(rand.NewSource(int64(n)))
	var fIvs, hIvs []temporal.Interval
	for i := 0; i < n; i++ {
		base := temporal.Tick(16 * i)
		fIvs = append(fIvs, temporal.Interval{Start: base, End: base + 12})
		s := base + temporal.Tick(2+r.Intn(8))
		hIvs = append(hIvs, temporal.Interval{Start: s, End: s + 1})
	}
	return temporal.NewSet(fIvs...), temporal.NewSet(hIvs...)
}
