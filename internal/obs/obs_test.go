package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("q.total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("q.total") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("pool.size")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("lat")
	for _, v := range []int64{1, 2, 3, 100, 1000, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("hist count = %d, want 6", h.Count())
	}
	snap := h.Snapshot()
	if snap.Count != 6 || snap.Sum != 1+2+3+100+1000+(1<<40) {
		t.Fatalf("bad hist snapshot: %+v", snap)
	}
	if snap.P50 < 3 || snap.P50 > 7 {
		t.Fatalf("p50 = %d, want within [3, 7]", snap.P50)
	}
	if snap.P99 < 1<<40 {
		t.Fatalf("p99 = %d, want >= 2^40", snap.P99)
	}
	var total int64
	for _, b := range snap.Buckets {
		total += b.Count
	}
	if total != 6 {
		t.Fatalf("bucket counts sum to %d, want 6", total)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestNilSafety is the contract the hot paths rely on: every operation on a
// nil registry, nil instrument, or nil span is a no-op, so a disabled
// observability layer costs only the nil checks.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	if r.Counter("x").Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(5)
	r.Histogram("h").Since(r.Start())
	if !r.Start().IsZero() {
		t.Fatal("nil registry Start should return the zero time")
	}
	sp := r.StartSpan("q")
	sp.Annotate("k", 1)
	child := sp.Child("stage")
	child.End()
	sp.End()
	if sp.Duration() != 0 || sp.Name() != "" {
		t.Fatal("nil span should be inert")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Traces) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
	if r.String() == "" {
		t.Fatal("nil registry String should still render JSON")
	}
	if r.CounterNames() != nil {
		t.Fatal("nil registry has no counter names")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(-7)
	r.Histogram("c").Observe(1500)
	sp := r.StartSpan("query")
	sp.Child("stage").End()
	sp.End()

	var decoded Snapshot
	if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if decoded.Counters["a"] != 2 || decoded.Gauges["b"] != -7 {
		t.Fatalf("bad decoded snapshot: %+v", decoded)
	}
	if decoded.Histograms["c"].Count != 1 {
		t.Fatalf("histogram missing from snapshot: %+v", decoded.Histograms)
	}
	tr, ok := decoded.Traces["query"]
	if !ok || len(tr.Children) != 1 || tr.Children[0].Name != "stage" {
		t.Fatalf("trace missing or malformed: %+v", decoded.Traces)
	}
}

func TestHistogramSince(t *testing.T) {
	r := New()
	h := r.Histogram("d")
	t0 := r.Start()
	if t0.IsZero() {
		t.Fatal("enabled registry Start returned zero time")
	}
	time.Sleep(time.Millisecond)
	h.Since(t0)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Sum() < int64(time.Millisecond)/2 {
		t.Fatalf("recorded %dns, want roughly >= 0.5ms", h.Sum())
	}
	// A zero start (disabled marker) records nothing.
	h.Since(time.Time{})
	if h.Count() != 1 {
		t.Fatal("zero start time must be ignored")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := New()
	r.Counter("hits").Add(3)
	sp := r.StartSpan("q")
	sp.End()
	srv := httptest.NewServer(NewServeMux(r))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return b.String()
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/obs")), &snap); err != nil {
		t.Fatalf("/obs is not JSON: %v", err)
	}
	if snap.Counters["hits"] != 3 {
		t.Fatalf("/obs counters = %+v", snap.Counters)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline endpoint returned nothing")
	}
	if body := get("/debug/vars"); !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Fatal("expvar endpoint did not return JSON")
	}
}

func TestPublishIdempotent(t *testing.T) {
	r := New()
	Publish("obs_test_registry", r)
	Publish("obs_test_registry", r) // must not panic
}
