package index

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

func TestInstantQuery(t *testing.T) {
	ix := NewAttrIndex(0, 100)
	// a: A(t) = t (crosses [40,50] during t in [40,50]).
	if err := ix.Insert("a", motion.LinearFrom(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	// b: constant 45 (always in range).
	if err := ix.Insert("b", motion.Static(45)); err != nil {
		t.Fatal(err)
	}
	// c: A(t) = -t (never in [40,50] for t >= 0).
	if err := ix.Insert("c", motion.LinearFrom(0, 0, -1)); err != nil {
		t.Fatal(err)
	}
	if got := ix.InstantQuery(40, 50, 45); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("InstantQuery(45) = %v", got)
	}
	if got := ix.InstantQuery(40, 50, 10); len(got) != 1 || got[0] != "b" {
		t.Fatalf("InstantQuery(10) = %v", got)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if err := ix.Insert("a", motion.Static(0)); err == nil {
		t.Error("duplicate insert should fail")
	}
}

func TestContinuousQuery(t *testing.T) {
	ix := NewAttrIndex(0, 100)
	if err := ix.Insert("a", motion.LinearFrom(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	ans := ix.ContinuousQuery(40, 50, 0)
	if len(ans) != 1 || ans[0].ID != "a" {
		t.Fatalf("answers = %+v", ans)
	}
	ivs := ans[0].Times.Intervals()
	if len(ivs) != 1 || ivs[0].Lo != 40 || ivs[0].Hi != 50 {
		t.Fatalf("times = %v", ivs)
	}
	// Entered later, the interval is clipped at the entry time.
	ans = ix.ContinuousQuery(40, 50, 45)
	if ivs := ans[0].Times.Intervals(); ivs[0].Lo != 45 || ivs[0].Hi != 50 {
		t.Fatalf("clipped times = %v", ivs)
	}
	// Outside the horizon nothing is found.
	if got := ix.ContinuousQuery(140, 150, 0); len(got) != 0 {
		t.Fatalf("beyond horizon = %+v", got)
	}
}

func TestUpdateRedirectsTrajectory(t *testing.T) {
	ix := NewAttrIndex(0, 100)
	attr := motion.LinearFrom(0, 0, 1)
	if err := ix.Insert("a", attr); err != nil {
		t.Fatal(err)
	}
	// At t=20 (value 20) the object reverses direction.
	attr = attr.Updated(20, motion.Linear(-1))
	if err := ix.Update("a", attr, 20); err != nil {
		t.Fatal(err)
	}
	// It never reaches 40 now.
	if got := ix.InstantQuery(40, 50, 45); len(got) != 0 {
		t.Fatalf("after update = %v", got)
	}
	// But it is at 15 at t=25.
	if got := ix.InstantQuery(14, 16, 25); len(got) != 1 {
		t.Fatalf("reversed position = %v", got)
	}
	// The past (t<20) is untouched: value 10 at t=10.
	if got := ix.InstantQuery(9, 11, 10); len(got) != 1 {
		t.Fatalf("past unchanged = %v", got)
	}
	if err := ix.Update("ghost", attr, 20); err == nil {
		t.Error("update of unindexed object should fail")
	}
}

func TestRemoveAndRebuild(t *testing.T) {
	ix := NewAttrIndex(0, 50)
	for i := 0; i < 10; i++ {
		id := most.ObjectID(fmt.Sprintf("o%d", i))
		if err := ix.Insert(id, motion.LinearFrom(float64(i), 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if !ix.Remove("o3") {
		t.Fatal("remove failed")
	}
	if ix.Remove("o3") {
		t.Fatal("double remove should fail")
	}
	got := ix.InstantQuery(-1000, 1000, 10)
	if len(got) != 9 {
		t.Fatalf("after remove: %v", got)
	}
	// Rebuild for a new window.
	if !ix.NeedsRebuild(50) || ix.NeedsRebuild(49) {
		t.Fatal("NeedsRebuild wrong")
	}
	attrs := map[most.ObjectID]motion.DynamicAttr{
		"x": motion.LinearFrom(100, 50, 2),
	}
	ix.Rebuild(50, attrs)
	if ix.Base() != 50 || ix.End() != 100 || ix.Len() != 1 {
		t.Fatalf("after rebuild: base=%d end=%d len=%d", ix.Base(), ix.End(), ix.Len())
	}
	if got := ix.InstantQuery(100, 120, 55); len(got) != 1 || got[0] != "x" {
		t.Fatalf("rebuilt query = %v", got)
	}
}

func TestIndexMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	ix := NewAttrIndex(0, 200)
	attrs := map[most.ObjectID]motion.DynamicAttr{}
	for i := 0; i < 300; i++ {
		id := most.ObjectID(fmt.Sprintf("o%03d", i))
		pieces := []motion.Piece{{Start: 0, Slope: float64(r.Intn(9) - 4)}}
		if r.Intn(2) == 0 {
			pieces = append(pieces, motion.Piece{Start: float64(10 + r.Intn(100)), Slope: float64(r.Intn(9) - 4)})
		}
		a := motion.DynamicAttr{Value: float64(r.Intn(200) - 100), Function: motion.MustFunc(pieces...)}
		attrs[id] = a
		if err := ix.Insert(id, a); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 100; q++ {
		lo := float64(r.Intn(300) - 150)
		hi := lo + float64(r.Intn(40))
		tick := temporal.Tick(r.Intn(200))
		got := ix.InstantQuery(lo, hi, tick)
		gotSet := map[most.ObjectID]bool{}
		for _, id := range got {
			gotSet[id] = true
		}
		for id, a := range attrs {
			v := a.At(tick)
			want := v >= lo && v <= hi
			if gotSet[id] != want {
				t.Fatalf("query %d (lo=%v hi=%v t=%d) object %s: got %v want %v (v=%v)",
					q, lo, hi, tick, id, gotSet[id], want, v)
			}
		}
	}
}

func TestIndexUpdateStormMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	ix := NewAttrIndex(0, 100)
	attrs := map[most.ObjectID]motion.DynamicAttr{}
	for i := 0; i < 50; i++ {
		id := most.ObjectID(fmt.Sprintf("o%02d", i))
		a := motion.LinearFrom(float64(r.Intn(100)-50), 0, float64(r.Intn(7)-3))
		attrs[id] = a
		if err := ix.Insert(id, a); err != nil {
			t.Fatal(err)
		}
	}
	// Apply random updates at increasing times, re-checking queries.
	for tick := temporal.Tick(10); tick < 100; tick += 10 {
		for i := 0; i < 10; i++ {
			id := most.ObjectID(fmt.Sprintf("o%02d", r.Intn(50)))
			next := attrs[id].Updated(tick, motion.Linear(float64(r.Intn(7)-3)))
			attrs[id] = next
			if err := ix.Update(id, next, tick); err != nil {
				t.Fatal(err)
			}
		}
		for q := 0; q < 10; q++ {
			lo := float64(r.Intn(200) - 100)
			hi := lo + float64(r.Intn(30))
			qt := tick + temporal.Tick(r.Intn(int(100-tick)))
			got := ix.InstantQuery(lo, hi, qt)
			gotSet := map[most.ObjectID]bool{}
			for _, id := range got {
				gotSet[id] = true
			}
			for id, a := range attrs {
				v := a.At(qt)
				want := v >= lo && v <= hi
				if gotSet[id] != want {
					t.Fatalf("t=%d query %d object %s: got %v want %v (v=%v lo=%v hi=%v)",
						qt, q, id, gotSet[id], want, v, lo, hi)
				}
			}
		}
	}
}

func TestMotionIndexInsidePolygon(t *testing.T) {
	ix := NewMotionIndex(0, 100)
	// Crosses the square x in [50,60] during t in [50,60].
	if err := ix.Insert("crosser", motion.MovingFrom(geom.Point{X: 0, Y: 5}, geom.Vector{X: 1}, 0)); err != nil {
		t.Fatal(err)
	}
	// Parked inside.
	if err := ix.Insert("parked", motion.PositionAt(geom.Point{X: 55, Y: 5}, 0)); err != nil {
		t.Fatal(err)
	}
	// Far away.
	if err := ix.Insert("far", motion.MovingFrom(geom.Point{X: 0, Y: 500}, geom.Vector{X: 1}, 0)); err != nil {
		t.Fatal(err)
	}
	sq := geom.RectPolygon(50, 0, 60, 10)
	ans := ix.InsidePolygonDuring(sq, 0, 100)
	if len(ans) != 2 {
		t.Fatalf("answers = %+v", ans)
	}
	if ans[0].ID != "crosser" || ans[1].ID != "parked" {
		t.Fatalf("ids = %v %v", ans[0].ID, ans[1].ID)
	}
	ivs := ans[0].Times.Intervals()
	if len(ivs) != 1 || ivs[0].Lo != 50 || ivs[0].Hi != 60 {
		t.Fatalf("crosser times = %v", ivs)
	}
	// Time-restricted query misses the crosser.
	ans = ix.InsidePolygonDuring(sq, 0, 30)
	if len(ans) != 1 || ans[0].ID != "parked" {
		t.Fatalf("restricted = %+v", ans)
	}
}

func TestMotionIndexUpdateAndRemove(t *testing.T) {
	ix := NewMotionIndex(0, 100)
	pos := motion.MovingFrom(geom.Point{X: 0, Y: 5}, geom.Vector{X: 1}, 0)
	if err := ix.Insert("v", pos); err != nil {
		t.Fatal(err)
	}
	// At t=20 the object turns away (heads -X), so it never reaches x=50.
	pos = pos.Retarget(20, geom.Vector{X: -1})
	if err := ix.Update("v", pos, 20); err != nil {
		t.Fatal(err)
	}
	sq := geom.RectPolygon(50, 0, 60, 10)
	if got := ix.InsidePolygonDuring(sq, 0, 100); len(got) != 0 {
		t.Fatalf("after turn = %+v", got)
	}
	// Its past presence at x=10 (t=10) is still indexed.
	early := geom.RectPolygon(9, 0, 11, 10)
	if got := ix.InsidePolygonDuring(early, 0, 15); len(got) != 1 {
		t.Fatalf("past presence = %+v", got)
	}
	if !ix.Remove("v") || ix.Remove("v") {
		t.Fatal("remove behaviour wrong")
	}
	if ix.Len() != 0 {
		t.Fatal("index should be empty")
	}
	ix.Rebuild(100, map[most.ObjectID]motion.Position{"w": motion.PositionAt(geom.Point{X: 55, Y: 5}, 100)})
	if got := ix.InsidePolygonDuring(sq, 100, 150); len(got) != 1 || got[0].ID != "w" {
		t.Fatalf("after rebuild = %+v", got)
	}
}

func TestMotionIndexMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	ix := NewMotionIndex(0, 60)
	positions := map[most.ObjectID]motion.Position{}
	for i := 0; i < 120; i++ {
		id := most.ObjectID(fmt.Sprintf("m%03d", i))
		p := motion.MovingFrom(
			geom.Point{X: float64(r.Intn(200) - 100), Y: float64(r.Intn(200) - 100)},
			geom.Vector{X: float64(r.Intn(7) - 3), Y: float64(r.Intn(7) - 3)},
			0)
		positions[id] = p
		if err := ix.Insert(id, p); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 50; q++ {
		x0 := float64(r.Intn(200) - 100)
		y0 := float64(r.Intn(200) - 100)
		pg := geom.RectPolygon(x0, y0, x0+30, y0+30)
		t0 := float64(r.Intn(50))
		t1 := t0 + float64(r.Intn(int(60-t0))+1)
		ans := ix.InsidePolygonDuring(pg, t0, t1)
		gotSet := map[most.ObjectID]geom.RealSet{}
		for _, a := range ans {
			gotSet[a.ID] = a.Times
		}
		for id, p := range positions {
			// Brute force at quarter-tick resolution.
			for tt := t0; tt <= t1; tt += 0.25 {
				want := pg.Contains(p.AtReal(tt))
				got := gotSet[id].Contains(tt)
				if got != want {
					// Boundary tolerance.
					pt := p.AtReal(tt)
					if pt.X >= x0-1e-6 && pt.X <= x0+30+1e-6 && (pt.Y >= y0-1e-6 && pt.Y <= y0+30+1e-6) &&
						(abs(pt.X-x0) < 1e-6 || abs(pt.X-x0-30) < 1e-6 || abs(pt.Y-y0) < 1e-6 || abs(pt.Y-y0-30) < 1e-6) {
						continue
					}
					t.Fatalf("query %d object %s t=%v: got %v want %v", q, id, tt, got, want)
				}
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestHorizonValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero horizon should panic")
		}
	}()
	NewAttrIndex(0, 0)
}
