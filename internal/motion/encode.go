package motion

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFunc parses the textual rendering produced by Func.String — "0",
// "5t", or "{0:5t, 10:-2t}" — back into a Func.  It is how the
// MOST-on-a-DBMS layer stores the A.function sub-attribute in an ordinary
// string column (§5.1: "we store each dynamic attribute A as three DBMS
// attributes A.value, A.updatetime, and A.function").
func ParseFunc(s string) (Func, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "0" {
		return Constant(), nil
	}
	if !strings.HasPrefix(s, "{") {
		// Single linear piece "5t".
		if !strings.HasSuffix(s, "t") {
			return Func{}, fmt.Errorf("motion: bad function %q", s)
		}
		slope, err := strconv.ParseFloat(strings.TrimSuffix(s, "t"), 64)
		if err != nil {
			return Func{}, fmt.Errorf("motion: bad function %q: %v", s, err)
		}
		return Linear(slope), nil
	}
	if !strings.HasSuffix(s, "}") {
		return Func{}, fmt.Errorf("motion: bad function %q", s)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	var pieces []Piece
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		colon := strings.Index(part, ":")
		if colon < 0 {
			return Func{}, fmt.Errorf("motion: bad function piece %q", part)
		}
		start, err := strconv.ParseFloat(part[:colon], 64)
		if err != nil {
			return Func{}, fmt.Errorf("motion: bad piece offset in %q: %v", part, err)
		}
		body := part[colon+1:]
		accel := 0.0
		if strings.HasSuffix(body, "t2") {
			// Quadratic piece: "<slope>t<+accel>t2".
			tPos := strings.Index(body, "t")
			if tPos < 0 || tPos+1 >= len(body) {
				return Func{}, fmt.Errorf("motion: bad quadratic piece %q", part)
			}
			accel, err = strconv.ParseFloat(strings.TrimSuffix(body[tPos+1:], "t2"), 64)
			if err != nil {
				return Func{}, fmt.Errorf("motion: bad piece acceleration in %q: %v", part, err)
			}
			body = body[:tPos+1]
		}
		if !strings.HasSuffix(body, "t") {
			return Func{}, fmt.Errorf("motion: bad function piece %q", part)
		}
		slope, err := strconv.ParseFloat(strings.TrimSuffix(body, "t"), 64)
		if err != nil {
			return Func{}, fmt.Errorf("motion: bad piece slope in %q: %v", part, err)
		}
		pieces = append(pieces, Piece{Start: start, Slope: slope, Accel: accel})
	}
	return NewFunc(pieces...)
}
