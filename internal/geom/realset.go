package geom

import (
	"math"
	"sort"

	"github.com/mostdb/most/internal/temporal"
)

// RealInterval is a closed interval of real-valued time.  Kinetic solvers
// produce these; they are then snapped to the discrete clock of the MOST
// history (one state per tick, paper §2.2) via RealSet.Ticks.
type RealInterval struct {
	Lo, Hi float64
}

// Valid reports whether the interval is non-empty.
func (ri RealInterval) Valid() bool { return ri.Lo <= ri.Hi }

// RealSet is a normalized union of disjoint closed real intervals in
// ascending order.
type RealSet struct {
	ivs []RealInterval
}

// mergeEps is the tolerance under which adjacent real intervals are
// coalesced; roots of kinetic quadratics carry floating-point noise.
const mergeEps = 1e-9

// NewRealSet normalizes arbitrary intervals into a RealSet.
func NewRealSet(ivs ...RealInterval) RealSet {
	valid := make([]RealInterval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Valid() {
			valid = append(valid, iv)
		}
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i].Lo < valid[j].Lo })
	out := valid[:0]
	for _, iv := range valid {
		if n := len(out); n > 0 && iv.Lo <= out[n-1].Hi+mergeEps {
			if iv.Hi > out[n-1].Hi {
				out[n-1].Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return RealSet{ivs: out}
}

// Intervals returns the normalized intervals; the slice must not be
// modified.
func (s RealSet) Intervals() []RealInterval { return s.ivs }

// IsEmpty reports whether the set is empty.
func (s RealSet) IsEmpty() bool { return len(s.ivs) == 0 }

// Contains reports whether x lies in the set (within tolerance).
func (s RealSet) Contains(x float64) bool {
	for _, iv := range s.ivs {
		if x >= iv.Lo-mergeEps && x <= iv.Hi+mergeEps {
			return true
		}
	}
	return false
}

// Union returns the union of two real sets.
func (s RealSet) Union(o RealSet) RealSet {
	all := make([]RealInterval, 0, len(s.ivs)+len(o.ivs))
	all = append(all, s.ivs...)
	all = append(all, o.ivs...)
	return NewRealSet(all...)
}

// Intersect returns the intersection of two real sets.
func (s RealSet) Intersect(o RealSet) RealSet {
	var out []RealInterval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		lo := math.Max(s.ivs[i].Lo, o.ivs[j].Lo)
		hi := math.Min(s.ivs[i].Hi, o.ivs[j].Hi)
		if lo <= hi {
			out = append(out, RealInterval{lo, hi})
		}
		if s.ivs[i].Hi < o.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return RealSet{ivs: out}
}

// ComplementWithin returns [lo,hi] minus the set.
func (s RealSet) ComplementWithin(lo, hi float64) RealSet {
	var out []RealInterval
	cur := lo
	for _, iv := range s.ivs {
		if iv.Hi < lo {
			continue
		}
		if iv.Lo > hi {
			break
		}
		if iv.Lo > cur {
			out = append(out, RealInterval{cur, iv.Lo})
		}
		if iv.Hi > cur {
			cur = iv.Hi
		}
	}
	if cur < hi {
		out = append(out, RealInterval{cur, hi})
	}
	return NewRealSet(out...)
}

// Ticks snaps the real set onto the discrete clock: tick k is in the result
// iff the real instant k lies in the set, clipped to window w.  A small
// tolerance absorbs root-finding noise so a predicate that holds exactly at
// an integer instant is not dropped.
func (s RealSet) Ticks(w temporal.Interval) temporal.Set {
	out := make([]temporal.Interval, 0, len(s.ivs))
	for _, iv := range s.ivs {
		start := temporal.CeilTick(iv.Lo - mergeEps)
		end := temporal.FloorTick(iv.Hi + mergeEps)
		if start <= end {
			out = append(out, temporal.Interval{Start: start, End: end})
		}
	}
	return temporal.NewSet(out...).Clip(w)
}
