package most

import (
	"time"

	"github.com/mostdb/most/internal/obs"
)

// This file is the database's observability attachment.  The instruments
// are pre-resolved once at Instrument time and held behind an atomic
// pointer, so the commit hot path pays a single pointer load plus one nil
// branch when observability is off — never a map lookup or a lock.
//
// Metric names:
//
//	db.commits              explicit updates committed (inserts, deletes, mutations)
//	db.commit_ns            commit latency: entry to log-append completion
//	db.snapshots            copy-on-read Snapshot() calls
//	db.snapshot_objects     object revisions copied across all snapshots
//	wal.appends / wal.append_ns   WAL record writes and their latency
//	wal.flushes                   group-commit batch writes (syscalls)
//	wal.syncs / wal.sync_ns       explicit fsyncs and their latency

// dbObs is the database's pre-resolved instrument set.
type dbObs struct {
	reg       *obs.Registry
	commits   *obs.Counter
	commitNs  *obs.Histogram
	snapshots *obs.Counter
	snapObjs  *obs.Counter
}

// start returns the commit start time, or the zero time when disabled (so
// the clock is not read at all on the uninstrumented path).
func (o *dbObs) start() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// commitDone records one committed update and its latency.
func (o *dbObs) commitDone(t0 time.Time) {
	if o == nil {
		return
	}
	o.commits.Inc()
	o.commitNs.Since(t0)
}

// snapshotDone records one copy-on-read snapshot of n object revisions.
func (o *dbObs) snapshotDone(n int) {
	if o == nil {
		return
	}
	o.snapshots.Inc()
	o.snapObjs.Add(int64(n))
}

// Instrument attaches an observability registry to the database: commits,
// snapshot copies, and (if a WAL is attached now or later) WAL append/fsync
// timings are recorded into it.  Instrument(nil) detaches.  Safe to call
// concurrently with commits.
func (db *Database) Instrument(reg *obs.Registry) {
	if reg == nil {
		db.obsv.Store(nil)
	} else {
		db.obsv.Store(&dbObs{
			reg:       reg,
			commits:   reg.Counter("db.commits"),
			commitNs:  reg.Histogram("db.commit_ns"),
			snapshots: reg.Counter("db.snapshots"),
			snapObjs:  reg.Counter("db.snapshot_objects"),
		})
	}
	if w := db.wal.Load(); w != nil {
		w.Instrument(reg)
	}
}

// Instrument attaches (or, with nil, detaches) an observability registry to
// the WAL, recording record appends and explicit fsyncs with latencies.
func (w *WAL) Instrument(reg *obs.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if reg == nil {
		w.appends, w.appendNs, w.syncs, w.syncNs = nil, nil, nil, nil
		return
	}
	w.appends = reg.Counter("wal.appends")
	w.appendNs = reg.Histogram("wal.append_ns")
	w.flushes = reg.Counter("wal.flushes")
	w.syncs = reg.Counter("wal.syncs")
	w.syncNs = reg.Histogram("wal.sync_ns")
}
