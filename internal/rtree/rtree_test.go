package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randRect(r *rand.Rand, dims int, span, size float64) Rect {
	var rc Rect
	for d := 0; d < dims; d++ {
		lo := r.Float64() * span
		rc.Min[d] = lo
		rc.Max[d] = lo + r.Float64()*size
	}
	return rc
}

func TestRectOps(t *testing.T) {
	a := Rect2(0, 0, 10, 10)
	b := Rect2(5, 5, 15, 15)
	c := Rect2(11, 0, 20, 10)
	if !a.Intersects(b, 2) || a.Intersects(c, 2) {
		t.Error("Intersects wrong")
	}
	if !a.Intersects(Rect2(10, 10, 20, 20), 2) {
		t.Error("touching boxes should intersect")
	}
	u := a.union(b, 2)
	if u != Rect2(0, 0, 15, 15) {
		t.Errorf("union = %+v", u)
	}
	if got := a.area(2); got != 100 {
		t.Errorf("area = %v", got)
	}
	if got := a.enlargement(b, 2); got != 125 {
		t.Errorf("enlargement = %v, want 125", got)
	}
	if !u.contains(a, 2) || a.contains(u, 2) {
		t.Error("contains wrong")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dims=0 should panic")
		}
	}()
	New[int](0, 16)
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New[int](2, 4)
	boxes := []Rect{
		Rect2(0, 0, 1, 1),
		Rect2(10, 10, 11, 11),
		Rect2(0.5, 0.5, 2, 2),
		Rect2(-5, -5, -4, -4),
	}
	for i, b := range boxes {
		tr.Insert(b, i)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.SearchAll(Rect2(0, 0, 3, 3))
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("SearchAll = %v", got)
	}
	if got := tr.SearchAll(Rect2(100, 100, 101, 101)); len(got) != 0 {
		t.Fatalf("empty search = %v", got)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New[int](2, 4)
	for i := 0; i < 100; i++ {
		tr.Insert(Rect2(0, 0, 1, 1), i)
	}
	count := 0
	tr.Search(Rect2(0, 0, 1, 1), func(Rect, int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestInsertSearchAgainstBruteForce(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		r := rand.New(rand.NewSource(int64(dims)))
		tr := New[int](dims, 8)
		var boxes []Rect
		for i := 0; i < 500; i++ {
			b := randRect(r, dims, 100, 10)
			boxes = append(boxes, b)
			tr.Insert(b, i)
		}
		for q := 0; q < 100; q++ {
			query := randRect(r, dims, 100, 25)
			got := tr.SearchAll(query)
			sort.Ints(got)
			var want []int
			for i, b := range boxes {
				if b.Intersects(query, dims) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("dims %d query %d: got %d hits, want %d", dims, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("dims %d query %d: got %v, want %v", dims, q, got, want)
				}
			}
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New[int](2, 4)
	boxes := make([]Rect, 200)
	r := rand.New(rand.NewSource(5))
	for i := range boxes {
		boxes[i] = randRect(r, 2, 50, 5)
		tr.Insert(boxes[i], i)
	}
	// Delete the even entries.
	for i := 0; i < len(boxes); i += 2 {
		if !tr.Delete(boxes[i], i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	// Deleting again fails.
	if tr.Delete(boxes[0], 0) {
		t.Fatal("double delete should fail")
	}
	// The odd entries are all still findable.
	got := tr.SearchAll(Rect2(-1000, -1000, 1000, 1000))
	sort.Ints(got)
	if len(got) != 100 {
		t.Fatalf("survivors = %d", len(got))
	}
	for i, v := range got {
		if v != 2*i+1 {
			t.Fatalf("survivors[%d] = %d, want %d", i, v, 2*i+1)
		}
	}
}

func TestRandomizedInsertDeleteSearch(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tr := New[int](2, 8)
	live := map[int]Rect{}
	next := 0
	for step := 0; step < 3000; step++ {
		switch {
		case len(live) == 0 || r.Float64() < 0.55:
			b := randRect(r, 2, 80, 8)
			tr.Insert(b, next)
			live[next] = b
			next++
		default:
			// Delete a random live entry.
			var id int
			k := r.Intn(len(live))
			for cand := range live {
				if k == 0 {
					id = cand
					break
				}
				k--
			}
			if !tr.Delete(live[id], id) {
				t.Fatalf("step %d: delete %d failed", step, id)
			}
			delete(live, id)
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: Len=%d want %d", step, tr.Len(), len(live))
		}
		if step%100 == 0 {
			query := randRect(r, 2, 80, 20)
			got := tr.SearchAll(query)
			sort.Ints(got)
			var want []int
			for id, b := range live {
				if b.Intersects(query, 2) {
					want = append(want, id)
				}
			}
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("step %d: got %d hits want %d", step, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: got %v want %v", step, got, want)
				}
			}
		}
	}
}

func TestHeightLogarithmic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{100, 1000, 10000} {
		tr := New[int](2, 16)
		for i := 0; i < n; i++ {
			tr.Insert(randRect(r, 2, 1000, 2), i)
		}
		// Height must be O(log_m n); with minEntry ~6, generous bound:
		maxH := int(math.Ceil(math.Log(float64(n))/math.Log(4))) + 2
		if h := tr.Height(); h > maxH {
			t.Errorf("n=%d: height %d exceeds bound %d", n, h, maxH)
		}
	}
}

func TestRect3(t *testing.T) {
	b := Rect3(0, 1, 2, 3, 4, 5)
	if b.Min != [3]float64{0, 1, 2} || b.Max != [3]float64{3, 4, 5} {
		t.Errorf("Rect3 = %+v", b)
	}
	if got := b.area(3); got != 27 {
		t.Errorf("area = %v", got)
	}
}
