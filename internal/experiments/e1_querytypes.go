package experiments

import (
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/query"
)

// E1QueryTypes reproduces Figure 1 and the §2.3 discussion operationally:
// the same query R — "retrieve the objects whose speed in the direction of
// the X-axis doubles within 10 minutes" — entered as instantaneous,
// continuous and persistent, over the paper's exact update script (5t at
// time 0, 7t at time 1, 10t at time 2), gives three different results:
// empty, empty, and {o} from time 2 on.
func E1QueryTypes() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "three query types on the speed-doubling scenario (Fig. 1, §2.3)",
		Claim:   "instantaneous and continuous queries never retrieve o; the persistent query retrieves o at time 2",
		Columns: []string{"time", "event", "instantaneous", "continuous", "persistent"},
	}

	db := most.NewDatabase()
	cls := most.MustClass("Objects", true)
	if err := db.DefineClass(cls); err != nil {
		panic(err)
	}
	o, err := most.NewObject("o", cls)
	if err != nil {
		panic(err)
	}
	o, _ = o.WithPosition(motion.MovingFrom(geom.Point{}, geom.Vector{X: 5}, 0))
	if err := db.Insert(o); err != nil {
		panic(err)
	}

	engine := newEngine(db)
	q := ftl.MustParse(`
		RETRIEVE o FROM Objects o
		WHERE [x <- SPEED(o.X.POSITION)]
			EVENTUALLY WITHIN 10 SPEED(o.X.POSITION) >= 2 * x`)
	opts := query.Options{Horizon: 60}

	cq, err := engine.Continuous(q, opts)
	if err != nil {
		panic(err)
	}
	pq, err := engine.Persistent(q, opts)
	if err != nil {
		panic(err)
	}

	render := func(rows []query.Row) string {
		if len(rows) == 0 {
			return "{}"
		}
		return "{o}"
	}
	snapshot := func(event string) {
		inst, err := engine.Instantaneous(q, opts)
		if err != nil {
			panic(err)
		}
		cont, err := cq.Current(db.Now())
		if err != nil {
			panic(err)
		}
		pers, err := pq.Current()
		if err != nil {
			panic(err)
		}
		t.AddRow(itoa(int(db.Now())), event, render(inst), render(cont), render(pers))
	}

	snapshot("insert o with X.POSITION.function = 5t")
	db.Advance(1)
	if err := db.UpdateFunction("o", most.XPosition, motion.Linear(7)); err != nil {
		panic(err)
	}
	snapshot("update function to 7t")
	db.Advance(1)
	if err := db.UpdateFunction("o", most.XPosition, motion.Linear(10)); err != nil {
		panic(err)
	}
	snapshot("update function to 10t")
	db.Advance(3)
	snapshot("(no update)")

	t.Notes = append(t.Notes,
		"the persistent query is anchored at time 0 and replays the logged history; at time 2 that history shows the speed rising from 5 to 10 within two ticks",
	)
	return t
}
