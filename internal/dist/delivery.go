package dist

import (
	"sort"

	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/temporal"
)

// This file simulates §5.2, "Continuous queries from moving objects": a
// centralized MOST server computes Answer(CQ) for a continuous query issued
// from a moving object M, and must transmit the tuples to M, which displays
// each instantiation between its begin and end times.  Two approaches:
//
//   - Immediate: "the whole set is transmitted immediately after being
//     computed"; if M's memory only fits B tuples, "the set Answer(CQ)
//     needs to be sorted by the begin attribute, and transmitted in blocks
//     of B tuples";
//   - Delayed: "each tuple (S, begin, end) in the set is transmitted to M
//     at time begin".
//
// The trade-off is driven by disconnection probability and update rate —
// this simulation measures exactly those quantities.

// DeliveryMode selects the transmission approach.
type DeliveryMode uint8

// Delivery modes.
const (
	Immediate DeliveryMode = iota
	Delayed
)

// DeliveryStats reports one delivery simulation.
type DeliveryStats struct {
	Messages int
	Bytes    int
	// MissedDisplays counts (tuple, display-window) losses: tuples that M
	// failed to display during their interval because the transmission was
	// dropped while M was disconnected.
	MissedDisplays int
	// RecoveredDisplays counts tuples whose first transmission was dropped
	// but that a re-attempt on reconnection delivered before the display
	// window closed (DeliverAnswerWithRetry only; always 0 otherwise).
	RecoveredDisplays int
	// PeakMemory is the largest number of tuples M held at once.
	PeakMemory int
}

// DeliverAnswer simulates transmitting Answer(CQ) to the moving client
// over [from, to] ticks.  answers is the materialized set; memoryB is the
// client's tuple capacity (0 = unlimited); connected(t) reports whether the
// client is reachable at tick t.
func (s *Sim) DeliverAnswer(answers []eval.Answer, mode DeliveryMode, memoryB int, from, to temporal.Tick, connected func(temporal.Tick) bool) DeliveryStats {
	return s.deliverAnswer(answers, mode, memoryB, from, to, connected, false)
}

// DeliverAnswerWithRetry is DeliverAnswer plus re-attempts on reconnection:
// a tuple whose transmission was dropped is retransmitted each tick until
// the client is reachable again, giving up when the display window closes
// (or the simulation ends).  Tuples of a dropped Immediate block are
// re-attempted individually.  Deliveries that a re-attempt saves are counted
// in RecoveredDisplays instead of MissedDisplays.
func (s *Sim) DeliverAnswerWithRetry(answers []eval.Answer, mode DeliveryMode, memoryB int, from, to temporal.Tick, connected func(temporal.Tick) bool) DeliveryStats {
	return s.deliverAnswer(answers, mode, memoryB, from, to, connected, true)
}

func (s *Sim) deliverAnswer(answers []eval.Answer, mode DeliveryMode, memoryB int, from, to temporal.Tick, connected func(temporal.Tick) bool, retry bool) DeliveryStats {
	stats := DeliveryStats{}
	sorted := append([]eval.Answer{}, answers...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Interval.Start != sorted[j].Interval.Start {
			return sorted[i].Interval.Start < sorted[j].Interval.Start
		}
		return sorted[i].Interval.End < sorted[j].Interval.End
	})

	received := make([]bool, len(sorted))
	tried := make([]temporal.Tick, len(sorted)) // tick of each tuple's first transmission
	switch mode {
	case Immediate:
		if memoryB <= 0 {
			// One message with everything at the start.
			stats.Messages++
			stats.Bytes += len(sorted) * s.Cost.TupleBytes
			ok := connected(from)
			for i := range sorted {
				received[i] = ok
				tried[i] = from
			}
			if ok {
				stats.PeakMemory = len(sorted)
			}
		} else {
			// Blocks of B tuples, sorted by begin.  Block k is transmitted
			// when the client has room: when the still-active tuples of
			// earlier blocks plus the new block fit, i.e. just in time for
			// the block's first begin.
			for start := 0; start < len(sorted); start += memoryB {
				end := min(start+memoryB, len(sorted))
				sendAt := from
				if start > 0 {
					sendAt = sorted[start].Interval.Start
					if sendAt < from {
						sendAt = from
					}
				}
				stats.Messages++
				stats.Bytes += (end - start) * s.Cost.TupleBytes
				ok := connected(sendAt)
				for i := start; i < end; i++ {
					received[i] = ok
					tried[i] = sendAt
				}
			}
			stats.PeakMemory = min(memoryB, len(sorted))
		}
	case Delayed:
		// One message per tuple at its begin time.  The client holds a
		// tuple only while it is on display, so memory tracks the number
		// of concurrently active intervals.
		var activeEnds []temporal.Tick
		for i, a := range sorted {
			sendAt := a.Interval.Start
			if sendAt < from {
				sendAt = from
			}
			stats.Messages++
			stats.Bytes += s.Cost.TupleBytes
			tried[i] = sendAt
			if connected(sendAt) {
				received[i] = true
				kept := activeEnds[:0]
				for _, e := range activeEnds {
					if e >= sendAt {
						kept = append(kept, e)
					}
				}
				activeEnds = append(kept, a.Interval.End)
				if len(activeEnds) > stats.PeakMemory {
					stats.PeakMemory = len(activeEnds)
				}
			}
		}
	}
	if retry {
		// Re-attempt each dropped tuple every tick after its failed
		// transmission until the client reconnects; a tuple is worth
		// retransmitting only while its display window is open.
		for i, a := range sorted {
			if received[i] {
				continue
			}
			deadline := min(to, a.Interval.End)
			for t := tried[i].Add(1); t <= deadline; t = t.Add(1) {
				stats.Messages++
				stats.Bytes += s.Cost.TupleBytes
				if connected(t) {
					received[i] = true
					if a.Interval.End >= from && a.Interval.Start <= to {
						stats.RecoveredDisplays++
					}
					break
				}
			}
		}
	}
	for i, a := range sorted {
		if !received[i] {
			// The display window overlapping [from, to] is lost.
			if a.Interval.End >= from && a.Interval.Start <= to {
				stats.MissedDisplays++
			}
		}
	}
	return stats
}

// RandomConnectivity returns a connectivity function where the client is
// reachable at each tick independently with probability 1-p, seeded
// deterministically.
func RandomConnectivity(seed int64, p float64) func(temporal.Tick) bool {
	cache := map[temporal.Tick]bool{}
	state := seed
	next := func() float64 {
		// xorshift64*, deterministic across runs.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(uint64(state)%1_000_000) / 1_000_000
	}
	return func(t temporal.Tick) bool {
		if v, ok := cache[t]; ok {
			return v
		}
		v := next() >= p
		cache[t] = v
		return v
	}
}
