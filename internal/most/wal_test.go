package most

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/motion"
)

// buildScript applies a fixed sequence of explicit updates: the workload
// every WAL test replays.
func buildScript(t *testing.T, db *Database, c *Class) {
	t.Helper()
	insertCar(t, db, c, "car1", geom.Point{X: 1, Y: 2}, geom.Vector{X: 1})
	insertCar(t, db, c, "car2", geom.Point{X: -5}, geom.Vector{Y: 2})
	db.Advance(3)
	if err := db.SetMotion("car1", geom.Vector{X: 2, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.SetStatic("car2", "PRICE", Float(99)); err != nil {
		t.Fatal(err)
	}
	db.Advance(4)
	insertCar(t, db, c, "car3", geom.Point{Y: 9}, geom.Vector{X: -1})
	if err := db.Delete("car2"); err != nil {
		t.Fatal(err)
	}
	if err := db.SetMotion("car3", geom.Vector{}); err != nil {
		t.Fatal(err)
	}
	db.Advance(2)
}

func snap(t *testing.T, db *Database) []byte {
	t.Helper()
	data, err := db.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The acceptance test: kill-and-restart, WAL replay reproduces a
// byte-identical serialized database state.
func TestWALReplayByteIdentical(t *testing.T) {
	var buf bytes.Buffer
	db, c := newTestDB(t)
	w := NewWAL(&buf)
	if err := db.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	buildScript(t, db, c)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}

	// "Crash": drop db on the floor, rebuild from the log alone.
	db2, rep, err := Recover(nil, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated {
		t.Fatalf("clean log reported truncated: %+v", rep)
	}
	if got, want := snap(t, db2), snap(t, db); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs:\n--- live ---\n%s\n--- recovered ---\n%s", want, got)
	}
	if db2.Now() != db.Now() || db2.Count() != db.Count() {
		t.Fatalf("clock/count differ: %d/%d vs %d/%d", db2.Now(), db2.Count(), db.Now(), db.Count())
	}
}

// Attaching a WAL to a database that already holds state writes a base
// image first, so the log alone still reconstructs everything.
func TestWALBootstrapOfNonEmptyDatabase(t *testing.T) {
	db, c := newTestDB(t)
	insertCar(t, db, c, "pre", geom.Point{X: 7}, geom.Vector{Y: 1})
	db.Advance(5)

	var buf bytes.Buffer
	if err := db.AttachWAL(NewWAL(&buf)); err != nil {
		t.Fatal(err)
	}
	buildScript(t, db, c)

	db2, rep, err := Recover(nil, buf.Bytes())
	if err != nil || rep.Truncated {
		t.Fatalf("err=%v rep=%+v", err, rep)
	}
	if !bytes.Equal(snap(t, db2), snap(t, db)) {
		t.Fatal("bootstrap + tail replay differs from live state")
	}
}

func TestAttachWALTwiceFails(t *testing.T) {
	db, _ := newTestDB(t)
	if err := db.AttachWAL(NewWAL(&bytes.Buffer{})); err != nil {
		t.Fatal(err)
	}
	if err := db.AttachWAL(NewWAL(&bytes.Buffer{})); err == nil {
		t.Fatal("second AttachWAL should fail")
	}
	if err := db.AttachWAL(nil); err == nil {
		t.Fatal("nil WAL should fail")
	}
}

// Checkpoint + post-checkpoint tail via the file-backed paths, including a
// simulated process restart reopening the same WAL file.
func TestCheckpointAndFileRecovery(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "most.wal")
	snapPath := filepath.Join(dir, "most.snap")

	w, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	db, c := newTestDB(t)
	if err := db.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	buildScript(t, db, c)

	if err := db.Checkpoint(snapPath); err != nil {
		t.Fatal(err)
	}
	if n := w.Records(); n != 0 {
		t.Fatalf("WAL not truncated by checkpoint: %d records", n)
	}

	// Post-checkpoint tail.
	insertCar(t, db, c, "late", geom.Point{X: 100}, geom.Vector{X: -3})
	db.Advance(6)
	if err := db.SetMotion("late", geom.Vector{Y: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	// "Restart": recover from snapshot + tail.
	db2, rep, err := RecoverFiles(snapPath, walPath)
	if err != nil || rep.Truncated {
		t.Fatalf("err=%v rep=%+v", err, rep)
	}
	if !bytes.Equal(snap(t, db2), snap(t, db)) {
		t.Fatal("snapshot+tail recovery differs from live state")
	}

	// Second incarnation keeps logging into the same (reopened) WAL
	// without re-bootstrapping, and recovers again.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := db2.AttachWAL(w2); err != nil {
		t.Fatal(err)
	}
	insertCar(t, db2, c2class(t, db2), "post-restart", geom.Point{Y: -4}, geom.Vector{X: 1})
	db2.Advance(1)

	db3, rep, err := RecoverFiles(snapPath, walPath)
	if err != nil || rep.Truncated {
		t.Fatalf("err=%v rep=%+v", err, rep)
	}
	if !bytes.Equal(snap(t, db3), snap(t, db2)) {
		t.Fatal("second-incarnation recovery differs")
	}
}

// c2class fetches the Vehicles class registered in a recovered database.
func c2class(t *testing.T, db *Database) *Class {
	t.Helper()
	c, ok := db.Class("Vehicles")
	if !ok {
		t.Fatal("recovered database lost the Vehicles class")
	}
	return c
}

// A torn tail (half-written final record) costs only the torn suffix.
func TestRecoverTornTail(t *testing.T) {
	var buf bytes.Buffer
	db, c := newTestDB(t)
	if err := db.AttachWAL(NewWAL(&buf)); err != nil {
		t.Fatal(err)
	}
	buildScript(t, db, c)

	whole := buf.Bytes()
	lines := bytes.Split(bytes.TrimSuffix(whole, []byte("\n")), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("script too short: %d records", len(lines))
	}
	// Cut the final record in half, as a crash mid-write would.
	last := lines[len(lines)-1]
	torn := bytes.Join(lines[:len(lines)-1], []byte("\n"))
	torn = append(torn, '\n')
	torn = append(torn, last[:len(last)/2]...)

	db2, rep, err := Recover(nil, torn)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.Records != len(lines)-1 || rep.BadLine != len(lines) {
		t.Fatalf("report = %+v, want truncation at line %d after %d records", rep, len(lines), len(lines)-1)
	}
	// The recovered prefix must equal a database that stopped one update
	// earlier — rebuild the reference by replaying the intact prefix.
	ref, rep2, err := Recover(nil, append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n'))
	if err != nil || rep2.Truncated {
		t.Fatalf("reference replay: err=%v rep=%+v", err, rep2)
	}
	if !bytes.Equal(snap(t, db2), snap(t, ref)) {
		t.Fatal("torn-tail recovery does not equal the intact prefix")
	}
}

// Reopening a crash-torn WAL file must repair the tail before appending:
// records written after the reopen land on their own lines and survive
// recovery, instead of being merged into the torn fragment and lost.
func TestOpenWALRepairsTornTailBeforeAppending(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "most.wal")

	w, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	db, c := newTestDB(t)
	if err := db.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	buildScript(t, db, c)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" mid-append: chop the final record in half, leaving no
	// trailing newline.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	last := lines[len(lines)-1]
	torn := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	torn = append(torn, last[:len(last)/2]...)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: the torn fragment must be truncated away and the sequence
	// counter resumed at the surviving record count.
	w2, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got, want := w2.Records(), uint64(len(lines)-1); got != want {
		t.Fatalf("reopened WAL resumed at seq %d, want %d", got, want)
	}

	// Recover the surviving prefix and keep committing into the same log.
	db2, rep, err := RecoverFiles(filepath.Join(dir, "none.snap"), walPath)
	if err != nil || rep.Truncated {
		t.Fatalf("post-repair recovery: err=%v rep=%+v", err, rep)
	}
	if err := db2.AttachWAL(w2); err != nil {
		t.Fatal(err)
	}
	db2.Advance(7)
	insertCar(t, db2, c2class(t, db2), "reborn", geom.Point{X: 3}, geom.Vector{Y: -2})

	// The post-reopen records must recover too — nothing silently discarded.
	db3, rep, err := RecoverFiles(filepath.Join(dir, "none.snap"), walPath)
	if err != nil || rep.Truncated {
		t.Fatalf("second recovery: err=%v rep=%+v", err, rep)
	}
	if !bytes.Equal(snap(t, db3), snap(t, db2)) {
		t.Fatal("recovery after reopen-and-append differs from live state")
	}
	if db3.Now() != db2.Now() {
		t.Fatalf("clock = %d, want %d", db3.Now(), db2.Now())
	}
	if _, ok := db3.Get("reborn"); !ok {
		t.Fatal("post-reopen insert lost")
	}
}

func TestRecoverCorruptMiddleStopsThere(t *testing.T) {
	var buf bytes.Buffer
	db, c := newTestDB(t)
	if err := db.AttachWAL(NewWAL(&buf)); err != nil {
		t.Fatal(err)
	}
	buildScript(t, db, c)

	data := bytes.Replace(buf.Bytes(), []byte(`"kind":"update"`), []byte(`"kind":"upfate"`), 1)
	db2, rep, err := Recover(nil, data)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || !strings.Contains(rep.Reason, "checksum") {
		t.Fatalf("report = %+v, want checksum failure", rep)
	}
	if db2 == nil {
		t.Fatal("partial recovery must still return a database")
	}
}

func TestRecoverRejectsBadSnapshot(t *testing.T) {
	if _, _, err := Recover([]byte("not json"), nil); err == nil {
		t.Fatal("bad snapshot must be an error")
	}
}

func TestRecoverEmptyInputs(t *testing.T) {
	db, rep, err := Recover(nil, nil)
	if err != nil || rep.Truncated || db.Count() != 0 || db.Now() != 0 {
		t.Fatalf("empty recovery: err=%v rep=%+v", err, rep)
	}
	// Missing files behave like empty inputs.
	dir := t.TempDir()
	db2, rep2, err := RecoverFiles(filepath.Join(dir, "nope.snap"), filepath.Join(dir, "nope.wal"))
	if err != nil || rep2.Truncated || db2.Count() != 0 {
		t.Fatalf("missing-file recovery: err=%v rep=%+v", err, rep2)
	}
}

// The WAL keeps persistent-query history replayable: the recovered log
// contains one update per replayed record, in tick order.
func TestRecoveredLogIsOrdered(t *testing.T) {
	var buf bytes.Buffer
	db, c := newTestDB(t)
	if err := db.AttachWAL(NewWAL(&buf)); err != nil {
		t.Fatal(err)
	}
	buildScript(t, db, c)
	db2, _, err := Recover(nil, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	log := db2.Log()
	if len(log) != len(db.Log()) {
		t.Fatalf("recovered log has %d updates, live has %d", len(log), len(db.Log()))
	}
	for i := 1; i < len(log); i++ {
		if log[i].Tick < log[i-1].Tick {
			t.Fatal("recovered log out of tick order")
		}
	}
}

// A WAL whose writer fails goes sticky-broken instead of failing commits.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 2 {
		return 0, os.ErrClosed
	}
	return len(p), nil
}

func TestWALWriteErrorIsStickyNotFatal(t *testing.T) {
	db, c := newTestDB(t)
	w := NewWAL(&failingWriter{})
	if err := db.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	buildScript(t, db, c) // must not panic or fail despite the dead writer
	if w.Err() == nil {
		t.Fatal("write failure not surfaced")
	}
	if db.Count() == 0 {
		t.Fatal("database should keep serving after WAL failure")
	}
}

func TestWALSnapshotVsReplayAgreeWithMixedAttrs(t *testing.T) {
	var buf bytes.Buffer
	db := NewDatabase()
	if err := db.AttachWAL(NewWAL(&buf)); err != nil {
		t.Fatal(err)
	}
	plain := MustClass("Sensors", false,
		AttrDef{Name: "NAME", Kind: Static},
		AttrDef{Name: "TEMP", Kind: Dynamic},
	)
	if err := db.DefineClass(plain); err != nil {
		t.Fatal(err)
	}
	o, _ := NewObject("s1", plain)
	o, _ = o.WithStatic("NAME", Str("roof"))
	o, _ = o.WithDynamic("TEMP", motion.DynamicAttr{
		Value: 20, UpdateTime: 0,
		Function: motion.MustFunc(motion.Piece{Start: 0, Slope: 0.5}, motion.Piece{Start: 10, Slope: -0.25}),
	})
	if err := db.Insert(o); err != nil {
		t.Fatal(err)
	}
	db.Advance(12)
	if err := db.SetDynamic("s1", "TEMP", motion.LinearFrom(26, 12, -1)); err != nil {
		t.Fatal(err)
	}
	db2, rep, err := Recover(nil, buf.Bytes())
	if err != nil || rep.Truncated {
		t.Fatalf("err=%v rep=%+v", err, rep)
	}
	if !bytes.Equal(snap(t, db2), snap(t, db)) {
		t.Fatal("mixed-attribute replay differs")
	}
}
