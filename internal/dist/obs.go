package dist

import (
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/temporal"

	"github.com/mostdb/most/internal/ftl/eval"
)

// simObs is the simulation's pre-resolved instrument set.  Sim.deliver is
// the single choke point every simulated message passes through, so the
// metrics here see exactly the traffic the Counters see.
//
// Metric names:
//
//	dist.messages / dist.bytes / dist.dropped   network traffic
//	dist.retries                                reliable-layer retransmissions
//	dist.stale_answers                          tuples marked uncertain by staleness annotation
type simObs struct {
	messages *obs.Counter
	bytes    *obs.Counter
	dropped  *obs.Counter
	retries  *obs.Counter
	stale    *obs.Counter
}

// Instrument attaches an observability registry to the simulation.  Call it
// before issuing queries from multiple goroutines (like PDisconnect, the
// attachment itself is not synchronized against in-flight queries).
// Instrument(nil) detaches.
func (s *Sim) Instrument(reg *obs.Registry) {
	if reg == nil {
		s.obsv = nil
		return
	}
	s.obsv = &simObs{
		messages: reg.Counter("dist.messages"),
		bytes:    reg.Counter("dist.bytes"),
		dropped:  reg.Counter("dist.dropped"),
		retries:  reg.Counter("dist.retries"),
		stale:    reg.Counter("dist.stale_answers"),
	}
}

func (o *simObs) sent(bytes int, dropped bool) {
	if o == nil {
		return
	}
	o.messages.Inc()
	o.bytes.Add(int64(bytes))
	if dropped {
		o.dropped.Inc()
	}
}

func (o *simObs) retried(n int) {
	if o == nil {
		return
	}
	o.retries.Add(int64(n))
}

func (o *simObs) staleMarked(n int) {
	if o == nil {
		return
	}
	o.stale.Add(int64(n))
}

// AnnotateStaleness is the free function of the same name run through the
// simulation's instrumentation: tuples marked uncertain are counted under
// dist.stale_answers.
func (s *Sim) AnnotateStaleness(db *most.Database, answers []eval.Answer, now, bound temporal.Tick) ([]AnnotatedAnswer, int) {
	out, marked := AnnotateStaleness(db, answers, now, bound)
	s.obsv.staleMarked(marked)
	return out, marked
}
