// Package client is the Go client for the MOST network service
// (internal/server): one TCP connection carrying pipelined requests and
// server-push continuous-query notifications, demultiplexed by request ID.
//
// # Reliability
//
// Every client carries a ClientID and stamps each request with a
// connection-independent request ID.  When a call fails on a transport
// error, the client redials and retransmits the same request ID; the
// server's idempotence cache recognizes IDs it has already executed and
// replays the stored response instead of applying the request again.
// At-least-once retransmission plus idempotent receipt is exactly-once
// application — the internal/faults reliable-delivery semantics (PR 2) on
// a real socket.  Server-reported errors (OpError) are not retried: the
// request was received and refused.
//
// # Protocol versions
//
// The client speaks protocol version 1 (JSON payloads) and version 2 (the
// compact binary codec, see PROTOCOL.md).  Each connection's Hello
// handshake — always spoken at version 1 — advertises the client's
// maximum (WithProtocol, default wire.MaxProtocolVersion) and adopts the
// server's negotiated answer, so a v2 client downgrades gracefully
// against a v1-only server and a v1 client is unaffected by a v2 server.
// Negotiation is per-connection: a reconnect renegotiates, and requests
// are encoded per attempt at that connection's version.
//
// # Self-healing
//
// A lost connection is an event the client absorbs, not an error it
// surfaces.  Calls retry on fresh connections under capped exponential
// backoff with seeded jitter; each reconnect attempt increments the
// client's session epoch, carried in the Hello, so the server can fence
// the zombie predecessor session and tell a resumed client from a new one.
// A server restart therefore looks, from the caller's side, like a brief
// latency spike.
//
// # Subscriptions
//
// Subscribe registers a continuous query and returns a Subscription
// mirroring the in-process query.Continuous handle: the server pushes the
// full materialized Answer(CQ) after every maintenance round, the handle
// stores the newest answer, and presentation at a tick is a local lookup
// (wire.RowsAt) — no round trip per tick, the paper's continuous-query
// contract preserved across the network boundary.  A subscription survives
// its connection: when the transport fails, the client parks it, heals the
// connection in the background, and transparently re-registers the query,
// reconciling the resumed answer against the last delivered one so the
// notification stream stays gap-free (the reconciliation answer carries
// anything missed while disconnected) and duplicate-free (an unchanged
// answer is suppressed).  Sequence numbers keep increasing across resumes.
// Only Client.Close — or a server-side refusal of the resumed query —
// terminates a subscription.
package client

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	mathrand "math/rand"
	"net"
	"sync"
	"time"

	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
)

// Errors the client reports.
var (
	// ErrClosed marks calls on a closed client.
	ErrClosed = errors.New("client: closed")
	// ErrConnLost marks a subscription ended by a transport failure.
	ErrConnLost = errors.New("client: connection lost")
	// ErrSubClosed marks a subscription ended by the server.
	ErrSubClosed = errors.New("client: subscription closed by server")
)

// errTransport wraps failures worth a retry on a fresh connection.
type errTransport struct{ err error }

func (e errTransport) Error() string { return e.err.Error() }
func (e errTransport) Unwrap() error { return e.err }

// ServerError is a request the server received and refused (an OpError
// response).  Code, when non-empty, is one of the wire.Code* constants;
// requests shed by admission control (wire.CodeOverloaded) are retried
// automatically within the retry budget, every other ServerError is final.
// Addr accompanies wire.CodeWrongZone: the address of the cluster node
// that owns the rejected object, for the caller to redirect to.  For a
// mixed batch Addr is empty and Redirects (when present) names the owner
// of each op instead, so the caller can regroup in one step.
type ServerError struct {
	Code      string
	Msg       string
	Addr      string
	Redirects []string
}

func (e *ServerError) Error() string { return "server: " + e.Msg }

// Option configures a client.
type Option func(*Client)

// WithTimeout sets the per-call timeout (default 10s).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.callTimeout = d } }

// WithRetries sets how many times a call is retransmitted after transport
// errors before giving up (default 3).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithClientID fixes the client identity used for idempotent retries
// (default: random).
func WithClientID(id string) Option { return func(c *Client) { c.id = id } }

// WithMaxPayload bounds inbound frame payloads (default
// wire.DefaultMaxPayload).
func WithMaxPayload(n int) Option { return func(c *Client) { c.maxPayload = n } }

// WithDialer replaces the TCP dialer, e.g. with one wrapping connections
// in a fault injector (internal/faults.WrapConn).
func WithDialer(dial func(addr string) (net.Conn, error)) Option {
	return func(c *Client) { c.dial = dial }
}

// WithProtocol caps the protocol version the client offers in the Hello
// handshake (default wire.MaxProtocolVersion).  The negotiated version is
// min(v, server max); 1 forces JSON payloads.  Values outside
// [1, wire.MaxProtocolVersion] are clamped.
func WithProtocol(v int) Option { return func(c *Client) { c.wantProto = v } }

// WithBackoff sets the retry/reconnect backoff schedule: delays double
// from base and are capped at max (defaults 50ms and 2s), with ±25%
// jitter applied so a fleet of clients does not reconnect in lockstep.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.backoff = base
		}
		if max > 0 {
			c.maxBackoff = max
		}
	}
}

// WithJitterSeed fixes the backoff jitter seed (default: derived from the
// ClientID), making retry schedules reproducible in tests and the chaos
// harness.
func WithJitterSeed(seed int64) Option {
	return func(c *Client) { c.jitterSeed, c.jitterSeeded = seed, true }
}

// WithResolver installs an address resolver consulted before every
// reconnect (never the initial dial): it receives the previous address and
// returns the one to dial next.  A cluster router uses this so a healing
// subscription re-resolves the node that now owns its objects via the zone
// map, instead of redialing a fixed address that may have lost them (or
// died for good).  Errors and empty returns fall back to the previous
// address.
func WithResolver(resolve func(prev string) (string, error)) Option {
	return func(c *Client) { c.resolve = resolve }
}

// WithPeer marks the connection as cluster-internal in its Hello: the
// server (when configured with a PeerMaxPayload) raises the frame bound so
// bulk handoff transfers fit.  Ordinary clients never set this.
func WithPeer() Option { return func(c *Client) { c.peer = true } }

// WithObs instruments the client: client.reconnects counts successful
// re-establishments of a previously lost connection, and
// client.resume_gap_rows counts answer rows delivered by subscription
// resume reconciliation (changes that arrived while disconnected).
func WithObs(reg *obs.Registry) Option { return func(c *Client) { c.reg = reg } }

// Client is a MOST network client.  Safe for concurrent use; concurrent
// calls pipeline on one connection.
type Client struct {
	addr         string
	id           string
	dial         func(addr string) (net.Conn, error)
	callTimeout  time.Duration
	retries      int
	backoff      time.Duration
	maxBackoff   time.Duration
	jitterSeed   int64
	jitterSeeded bool
	maxPayload   int
	wantProto    int // highest protocol version offered in Hello
	peer         bool
	resolve      func(prev string) (string, error)
	reg          *obs.Registry

	reconnects    *obs.Counter
	resumeGapRows *obs.Counter

	writeMu sync.Mutex // serializes frame writes to conn

	jmu    sync.Mutex
	jitter *mathrand.Rand

	mu      sync.Mutex
	conn    net.Conn
	proto   uint8  // negotiated protocol version of the current connection
	gen     uint64 // connection generation, to ignore stale readLoop failures
	epoch   uint64 // session epoch, incremented per connection attempt
	nextID  uint64
	nextKey uint64 // client-side subscription keys (stable across resumes)
	pending map[uint64]chan wire.Frame
	subs    map[uint64]*Subscription // by current server subscription ID
	parked  map[uint64]*Subscription // by key: awaiting resume after a teardown
	orphans map[uint64]wire.Notify   // notifies that beat their SubscribeResp
	resumed bool                     // last Hello's Resumed flag
	healing bool
	closed  bool
}

// Dial connects to a mostserver at addr.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{
		addr:        addr,
		id:          randomID(),
		dial:        func(a string) (net.Conn, error) { return net.DialTimeout("tcp", a, 10*time.Second) },
		callTimeout: 10 * time.Second,
		retries:     3,
		backoff:     50 * time.Millisecond,
		maxBackoff:  2 * time.Second,
		maxPayload:  wire.DefaultMaxPayload,
		wantProto:   wire.MaxProtocolVersion,
		pending:     map[uint64]chan wire.Frame{},
		subs:        map[uint64]*Subscription{},
		parked:      map[uint64]*Subscription{},
		orphans:     map[uint64]wire.Notify{},
	}
	for _, o := range opts {
		o(c)
	}
	if c.wantProto < wire.ProtocolV1 || c.wantProto > wire.MaxProtocolVersion {
		c.wantProto = wire.MaxProtocolVersion
	}
	if c.maxBackoff < c.backoff {
		c.maxBackoff = c.backoff
	}
	if !c.jitterSeeded {
		c.jitterSeed = int64(crc32.ChecksumIEEE([]byte(c.id)))
	}
	c.jitter = mathrand.New(mathrand.NewSource(c.jitterSeed))
	c.reconnects = c.reg.Counter("client.reconnects")
	c.resumeGapRows = c.reg.Counter("client.resume_gap_rows")
	c.mu.Lock()
	err := c.connectLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

func randomID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "client-unidentified"
	}
	return hex.EncodeToString(b[:])
}

// connectLocked dials and performs the Hello handshake synchronously on
// the raw connection, publishing it (and starting the read loop) only once
// the server has acknowledged the client identity — so no request can
// reach the socket before the idempotence cache is bound.  Callers hold
// c.mu for the duration.
func (c *Client) connectLocked() error {
	if c.closed {
		return ErrClosed
	}
	if c.resolve != nil && c.gen > 0 {
		// Reconnect: the party we should talk to may have moved (a cluster
		// rebalance, a replacement node).  Re-resolve; failures keep the
		// previous address so healing still works when the resolver's own
		// source is down.
		if addr, err := c.resolve(c.addr); err == nil && addr != "" {
			c.addr = addr
		}
	}
	conn, err := c.dial(c.addr)
	if err != nil {
		return errTransport{err}
	}
	id := c.reserveIDLocked()
	// Every connection attempt is a new session epoch: the server fences
	// any lingering predecessor session of this client, and rejects this
	// Hello (CodeStaleEpoch) if an even newer session has taken over.
	c.epoch++
	// Hello is always version 1, whatever we hope to negotiate: a v1-only
	// server must be able to read it (and will ignore the max_version
	// field, answering Version 1 — the graceful downgrade).
	f, err := wire.Encode(wire.OpHello, id, wire.HelloReq{ClientID: c.id, MaxVersion: c.wantProto, Epoch: c.epoch, Peer: c.peer})
	if err != nil {
		conn.Close()
		return err
	}
	conn.SetDeadline(time.Now().Add(c.callTimeout))
	if err := wire.WriteFrame(conn, f); err != nil {
		conn.Close()
		return errTransport{err}
	}
	resp, err := wire.NewDecoder(conn, c.maxPayload).Next()
	if err != nil {
		conn.Close()
		return errTransport{err}
	}
	conn.SetDeadline(time.Time{})
	if resp.Op == wire.OpError {
		conn.Close()
		var e wire.ErrorResp
		_ = wire.Unmarshal(resp, &e)
		return fmt.Errorf("client: hello rejected: %s", e.Msg)
	}

	var hello wire.HelloResp
	if err := wire.Unmarshal(resp, &hello); err != nil {
		conn.Close()
		return err
	}
	if hello.Version == 0 {
		// Pre-negotiation servers omit the field; they speak version 1.
		hello.Version = wire.ProtocolV1
	}
	if hello.Version < wire.ProtocolV1 || hello.Version > c.wantProto {
		conn.Close()
		return fmt.Errorf("client: server negotiated protocol %d, offered at most %d", hello.Version, c.wantProto)
	}
	if c.gen > 0 {
		c.reconnects.Inc()
	}
	c.conn = conn
	c.proto = uint8(hello.Version)
	c.resumed = hello.Resumed
	c.gen++
	go c.readLoop(conn, c.gen, c.proto)
	return nil
}

// Resumed reports whether the server recognized this client's identity at
// the current connection's Hello — its idempotence cache and epoch fence
// were already bound, from an earlier connection or from durable recovery.
func (c *Client) Resumed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumed
}

// Epoch returns the client's current session epoch.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// backoffDelay is the pause before retry/reconnect attempt (1-based):
// exponential from the base, capped at the configured maximum, with ±25%
// deterministic jitter so client fleets desynchronize without losing test
// reproducibility.  Overflow-safe at any attempt count.
func (c *Client) backoffDelay(attempt int) time.Duration {
	d := c.backoff
	for i := 1; i < attempt; i++ {
		if d >= c.maxBackoff/2 {
			d = c.maxBackoff
			break
		}
		d *= 2
	}
	if d > c.maxBackoff {
		d = c.maxBackoff
	}
	c.jmu.Lock()
	j := time.Duration(c.jitter.Int63n(int64(d)/2 + 1))
	c.jmu.Unlock()
	return d - d/4 + j
}

func (c *Client) reserveIDLocked() uint64 {
	c.nextID++
	return c.nextID
}

func awaitFrame(ch <-chan wire.Frame, timeout time.Duration) (wire.Frame, error) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case f, ok := <-ch:
		if !ok {
			return wire.Frame{}, errTransport{ErrConnLost}
		}
		return f, nil
	case <-t.C:
		return wire.Frame{}, fmt.Errorf("client: call timed out after %s", timeout)
	}
}

// writeFrame serializes one frame write under the write deadline.
func (c *Client) writeFrame(conn net.Conn, f wire.Frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(c.callTimeout))
	return wire.WriteFrame(conn, f)
}

// readLoop demultiplexes inbound frames for one connection generation.
// The decoder is pinned to the connection's negotiated protocol version:
// a frame at any other version is a protocol violation that tears the
// connection down.
func (c *Client) readLoop(conn net.Conn, gen uint64, proto uint8) {
	dec := wire.NewDecoder(conn, c.maxPayload)
	dec.SetVersion(proto)
	for {
		f, err := dec.Next()
		if err != nil {
			c.mu.Lock()
			if c.gen == gen {
				c.teardownConnLocked(conn, err)
			}
			c.mu.Unlock()
			return
		}
		switch f.Op {
		case wire.OpNotify:
			var n wire.Notify
			if wire.Unmarshal(f, &n) != nil {
				continue
			}
			c.mu.Lock()
			sub, ok := c.subs[n.SubID]
			if !ok {
				if len(c.orphans) < 64 {
					c.orphans[n.SubID] = n
				}
			}
			c.mu.Unlock()
			if ok {
				sub.deliver(n)
			}
		case wire.OpSubClosed:
			var sc wire.SubClosed
			if wire.Unmarshal(f, &sc) != nil {
				continue
			}
			c.mu.Lock()
			sub, ok := c.subs[sc.SubID]
			delete(c.subs, sc.SubID)
			c.mu.Unlock()
			if ok {
				reason := sc.Reason
				if reason == "" {
					reason = "server closed subscription"
				}
				sub.fail(fmt.Errorf("%w: %s", ErrSubClosed, reason))
			}
		default:
			c.mu.Lock()
			ch, ok := c.pending[f.ID]
			if ok {
				delete(c.pending, f.ID)
			}
			c.mu.Unlock()
			if ok {
				ch <- f
			}
		}
	}
}

// teardownConnLocked unwinds a broken connection: in-flight calls fail
// (their retry loop redials), and live subscriptions are parked for the
// background heal goroutine to re-register — they only die if the client
// itself is closed.  Callers hold c.mu.
func (c *Client) teardownConnLocked(conn net.Conn, cause error) {
	conn.Close()
	if c.conn == conn {
		c.conn = nil
	}
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	subs := c.subs
	c.subs = map[uint64]*Subscription{}
	c.orphans = map[uint64]wire.Notify{}
	if c.closed {
		for _, sub := range subs {
			go sub.fail(fmt.Errorf("%w: %v", ErrConnLost, cause))
		}
		return
	}
	for _, sub := range subs {
		c.parked[sub.key] = sub
	}
	c.startHealLocked()
}

// startHealLocked launches the single-flight heal goroutine when parked
// subscriptions need a connection.  Callers hold c.mu.
func (c *Client) startHealLocked() {
	if c.healing || c.closed || len(c.parked) == 0 {
		return
	}
	c.healing = true
	go c.heal()
}

// heal reconnects under backoff and re-registers every parked
// subscription.  It exits when nothing is parked or the client closes;
// a connection lost mid-heal parks the subscriptions again and the loop
// continues.
func (c *Client) heal() {
	for attempt := 1; ; attempt++ {
		c.mu.Lock()
		if c.closed || len(c.parked) == 0 {
			c.healing = false
			parked := c.drainParkedLocked()
			c.mu.Unlock()
			for _, sub := range parked {
				sub.fail(fmt.Errorf("%w: client closed while resuming", ErrConnLost))
			}
			return
		}
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				c.mu.Unlock()
				time.Sleep(c.backoffDelay(attempt))
				continue
			}
		}
		parked := make([]*Subscription, 0, len(c.parked))
		for _, sub := range c.parked {
			parked = append(parked, sub)
		}
		c.mu.Unlock()

		stalled := false
		for _, sub := range parked {
			if !c.resubscribe(sub) {
				stalled = true
				break
			}
		}
		if stalled {
			time.Sleep(c.backoffDelay(attempt))
			continue
		}
		c.mu.Lock()
		done := len(c.parked) == 0
		if done {
			c.healing = false
		}
		c.mu.Unlock()
		if done {
			return
		}
	}
}

// drainParkedLocked empties the parked set (used when the client closes
// while subscriptions await resume).  Callers hold c.mu.
func (c *Client) drainParkedLocked() []*Subscription {
	parked := make([]*Subscription, 0, len(c.parked))
	for _, sub := range c.parked {
		parked = append(parked, sub)
	}
	c.parked = map[uint64]*Subscription{}
	return parked
}

// resubscribe re-registers one parked subscription on the healed
// connection and reconciles its answer stream.  It returns false when the
// attempt should be retried after backoff (transport failure), true when
// the subscription was resumed, permanently rejected, or withdrawn.
func (c *Client) resubscribe(sub *Subscription) bool {
	var resp wire.SubscribeResp
	err := c.call(wire.OpSubscribe, &wire.SubscribeReq{Src: sub.src, Horizon: sub.horizon}, &resp)
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) {
			// The server evaluated and refused the query itself: resuming
			// can never succeed, so the subscription ends.
			c.mu.Lock()
			delete(c.parked, sub.key)
			c.mu.Unlock()
			sub.fail(fmt.Errorf("%w: resume rejected: %v", ErrSubClosed, err))
			return true
		}
		return false
	}
	c.mu.Lock()
	if _, still := c.parked[sub.key]; !still || c.closed {
		// Closed while the registration was in flight: withdraw it.
		c.mu.Unlock()
		_ = c.call(wire.OpUnsubscribe, &wire.UnsubscribeReq{SubID: resp.SubID}, nil)
		return true
	}
	delete(c.parked, sub.key)
	sub.subID = resp.SubID
	c.subs[resp.SubID] = sub
	orphan, hadOrphan := c.orphans[resp.SubID]
	delete(c.orphans, resp.SubID)
	c.mu.Unlock()
	if rows, changed := sub.resumeReconcile(resp.Answer); changed {
		c.resumeGapRows.Add(int64(rows))
	}
	if hadOrphan {
		sub.deliver(orphan)
	}
	return true
}

// call executes one request, retransmitting on transport errors under the
// same request ID so the server's idempotence cache can suppress double
// application.  Payloads are encoded per attempt: a retry may land on a
// fresh connection with a different negotiated protocol version.
func (c *Client) call(op wire.Opcode, payload, out any) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	id := c.reserveIDLocked()
	c.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoffDelay(attempt))
		}
		resp, err := c.roundTrip(op, id, payload)
		if err == nil {
			if resp.Op == wire.OpError {
				var e wire.ErrorResp
				_ = wire.Unmarshal(resp, &e)
				serr := &ServerError{Code: e.Code, Msg: e.Msg, Addr: e.Addr, Redirects: e.Redirects}
				if e.Code == wire.CodeOverloaded {
					// Shed by admission control: transient by definition,
					// so retried under backoff like a transport failure.
					lastErr = serr
					continue
				}
				return serr
			}
			if out != nil {
				return wire.Unmarshal(resp, out)
			}
			return nil
		}
		lastErr = err
		var te errTransport
		if !errors.As(err, &te) {
			return err
		}
	}
	return fmt.Errorf("client: %s failed after %d attempts: %w", op, c.retries+1, lastErr)
}

// roundTrip encodes one request at the current connection's negotiated
// protocol version (dialing if needed) and waits for its response.
func (c *Client) roundTrip(op wire.Opcode, id uint64, payload any) (wire.Frame, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return wire.Frame{}, ErrClosed
	}
	if c.conn == nil {
		if err := c.connectLocked(); err != nil {
			c.mu.Unlock()
			return wire.Frame{}, err
		}
	}
	conn, proto := c.conn, c.proto
	ch := make(chan wire.Frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	req, err := wire.EncodeFrame(proto, op, id, payload)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return wire.Frame{}, err
	}
	if err := c.writeFrame(conn, req); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.teardownConnLocked(conn, err)
		c.mu.Unlock()
		return wire.Frame{}, errTransport{err}
	}
	f, err := awaitFrame(ch, c.callTimeout)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return wire.Frame{}, err
	}
	return f, nil
}

// Close tears the client down; in-flight calls fail and every
// subscription — live or parked awaiting resume — ends.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	if conn != nil {
		c.teardownConnLocked(conn, ErrClosed)
	}
	parked := c.drainParkedLocked()
	c.mu.Unlock()
	for _, sub := range parked {
		sub.fail(fmt.Errorf("%w: client closed", ErrConnLost))
	}
	return nil
}

// ---- typed calls ----

// Ping round-trips an empty frame.
func (c *Client) Ping() error { return c.call(wire.OpPing, nil, nil) }

// Protocol reports the negotiated protocol version of the current
// connection (0 when disconnected).
func (c *Client) Protocol() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0
	}
	return int(c.proto)
}

// Query evaluates src as an instantaneous query; horizon <= 0 uses the
// server default.  It returns the server's evaluation tick and the
// satisfied instantiations.
func (c *Client) Query(src string, horizon temporal.Tick) (temporal.Tick, [][]wire.Value, error) {
	var resp wire.QueryResp
	if err := c.call(wire.OpQuery, &wire.QueryReq{Src: src, Horizon: horizon, DeadlineMS: c.deadlineMS()}, &resp); err != nil {
		return 0, nil, err
	}
	return resp.Now, resp.Rows, nil
}

// UpdateBatch applies explicit updates in order, exactly once.
func (c *Client) UpdateBatch(ops []wire.UpdateOp) (wire.UpdateBatchResp, error) {
	var resp wire.UpdateBatchResp
	err := c.call(wire.OpUpdateBatch, &wire.UpdateBatchReq{Ops: ops, DeadlineMS: c.deadlineMS()}, &resp)
	return resp, err
}

// deadlineMS is the per-request deadline budget advertised to the server,
// derived from the call timeout: past it, the response cannot be received
// in time anyway, so the server may refuse instead of doing stale work.
func (c *Client) deadlineMS() int64 { return int64(c.callTimeout / time.Millisecond) }

// SetMotion updates one object's motion vector.
func (c *Client) SetMotion(id string, vx, vy float64) error {
	_, err := c.UpdateBatch([]wire.UpdateOp{{Op: wire.OpSetMotion, ID: id, VX: vx, VY: vy}})
	return err
}

// Advance moves the server clock forward by d ticks.
func (c *Client) Advance(d temporal.Tick) (temporal.Tick, error) {
	var resp wire.AdvanceResp
	err := c.call(wire.OpAdvance, &wire.AdvanceReq{D: d}, &resp)
	return resp.Now, err
}

// Objects lists objects with their positions at the server's current tick.
func (c *Client) Objects(class string) (wire.ObjectsResp, error) {
	var resp wire.ObjectsResp
	err := c.call(wire.OpObjects, &wire.ObjectsReq{Class: class}, &resp)
	return resp, err
}

// SnapshotSave serializes the server's database state.
func (c *Client) SnapshotSave() ([]byte, error) {
	var resp wire.SnapshotResp
	if err := c.call(wire.OpSnapshotSave, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// SnapshotLoad replaces the server's database.  Every live subscription on
// the server (any client's) ends with a SubClosed push.
func (c *Client) SnapshotLoad(data []byte) (wire.SnapshotLoadResp, error) {
	var resp wire.SnapshotLoadResp
	err := c.call(wire.OpSnapshotLoad, &wire.SnapshotLoadReq{Data: data}, &resp)
	return resp, err
}

// ---- cluster calls ----

// ZoneMap fetches the cluster topology from a cluster node.
func (c *Client) ZoneMap() (wire.ZoneMapResp, error) {
	var resp wire.ZoneMapResp
	err := c.call(wire.OpZoneMap, nil, &resp)
	return resp, err
}

// Handoff transfers one object's motion record to this node (peer-to-peer
// use by cluster nodes).  Retries retransmit the same request ID, so the
// receiver's idempotence cache plus the version fence give exactly-once
// application however often the transfer is redelivered.
func (c *Client) Handoff(req *wire.HandoffReq) (wire.HandoffResp, error) {
	var resp wire.HandoffResp
	err := c.call(wire.OpHandoff, req, &resp)
	return resp, err
}

// Forward relays an update batch to this node on behalf of req.Origin
// (peer-to-peer use).  The receiver executes it under the origin identity
// and request ID, preserving cluster-wide idempotence.
func (c *Client) Forward(req *wire.ForwardReq) (wire.UpdateBatchResp, error) {
	var resp wire.UpdateBatchResp
	err := c.call(wire.OpForward, req, &resp)
	return resp, err
}

// ---- subscriptions ----

// Subscription is the client half of a server-maintained continuous
// query.  Its identity is the client-side key, not the server-side subID:
// the subID changes every time the subscription is transparently
// re-registered after a lost connection, while key, the answer stream,
// and its sequence numbers continue uninterrupted.
type Subscription struct {
	c       *Client
	key     uint64 // client-side identity, stable across resumes
	src     string
	horizon temporal.Tick
	subID   uint64 // current server-side subscription ID

	mu     sync.Mutex
	answer []wire.AnswerRow
	seq    uint64 // effective sequence, monotonic across resumes
	base   uint64 // offset added to server sequence numbers after a resume
	err    error

	updates chan struct{} // capacity-1 change signal
	done    chan struct{}
	once    sync.Once
}

// Subscribe registers src as a continuous query on the server.
func (c *Client) Subscribe(src string, horizon temporal.Tick) (*Subscription, error) {
	var resp wire.SubscribeResp
	if err := c.call(wire.OpSubscribe, &wire.SubscribeReq{Src: src, Horizon: horizon}, &resp); err != nil {
		return nil, err
	}
	sub := &Subscription{
		c:       c,
		subID:   resp.SubID,
		src:     src,
		horizon: horizon,
		answer:  resp.Answer,
		updates: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	c.mu.Lock()
	orphan, hadOrphan := c.orphans[resp.SubID]
	delete(c.orphans, resp.SubID)
	if c.conn == nil || c.closed {
		c.mu.Unlock()
		return nil, ErrConnLost
	}
	c.nextKey++
	sub.key = c.nextKey
	c.subs[resp.SubID] = sub
	c.mu.Unlock()
	if hadOrphan {
		sub.deliver(orphan)
	}
	return sub, nil
}

// deliver installs a notification (monotonic in effective sequence: the
// server's per-registration sequence shifted by the resume base).
func (s *Subscription) deliver(n wire.Notify) {
	s.mu.Lock()
	if eff := s.base + n.Seq; eff > s.seq {
		s.answer, s.seq = n.Answer, eff
	}
	s.mu.Unlock()
	select {
	case s.updates <- struct{}{}:
	default:
	}
}

// resumeReconcile folds the answer returned by a re-registration into the
// stream.  An answer identical to the last delivered one is suppressed
// (nothing changed while disconnected — no duplicate notification); a
// different one is installed as the next step in the sequence, covering
// every change missed during the outage in a single gap-free transition.
// It reports the number of rows installed and whether anything changed.
func (s *Subscription) resumeReconcile(answer []wire.AnswerRow) (int, bool) {
	s.mu.Lock()
	if wire.CanonicalAnswers(answer) == wire.CanonicalAnswers(s.answer) {
		// The fresh registration restarts the server-side sequence at
		// zero; rebase so its next notification lands at s.seq+1.
		s.base = s.seq
		s.mu.Unlock()
		return 0, false
	}
	s.seq++
	s.base = s.seq
	s.answer = answer
	s.mu.Unlock()
	select {
	case s.updates <- struct{}{}:
	default:
	}
	return len(answer), true
}

// fail terminates the subscription.
func (s *Subscription) fail(err error) {
	s.once.Do(func() {
		s.mu.Lock()
		s.err = err
		s.mu.Unlock()
		close(s.done)
	})
}

// Answer returns the newest materialized answer with its server sequence
// number (0 = the subscription's initial answer).
func (s *Subscription) Answer() ([]wire.AnswerRow, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.answer, s.seq, s.err
}

// Current presents the rows satisfied at tick t from the newest answer —
// a local lookup, mirroring query.Continuous.Current.
func (s *Subscription) Current(t temporal.Tick) ([][]wire.Value, error) {
	answer, _, err := s.Answer()
	if err != nil {
		return nil, err
	}
	return wire.RowsAt(answer, t), nil
}

// Updates signals after new notifications install (coalescing: one signal
// may cover several).
func (s *Subscription) Updates() <-chan struct{} { return s.updates }

// Done closes when the subscription ends; Err then reports why.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Err reports the terminal error, nil while live.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close cancels the subscription on the server and ends the handle.
func (s *Subscription) Close() error {
	s.c.mu.Lock()
	_, live := s.c.subs[s.subID]
	delete(s.c.subs, s.subID)
	delete(s.c.parked, s.key)
	s.c.mu.Unlock()
	s.fail(errors.New("client: subscription closed"))
	if !live {
		return nil
	}
	return s.c.call(wire.OpUnsubscribe, &wire.UnsubscribeReq{SubID: s.subID}, nil)
}
