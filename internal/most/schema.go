package most

import "fmt"

// Positional attribute names of spatial object classes (paper §2: "a
// spatial object class has three attributes called X.POSITION, Y.POSITION,
// Z.POSITION, denoting the object's position in space").
const (
	XPosition = "X.POSITION"
	YPosition = "Y.POSITION"
	ZPosition = "Z.POSITION"
)

// AttrKind says whether an attribute changes only under explicit update
// (static) or continuously as a function of time (dynamic) — §2.1.
type AttrKind uint8

// Attribute kinds.
const (
	Static AttrKind = iota
	Dynamic
)

func (k AttrKind) String() string {
	if k == Dynamic {
		return "dynamic"
	}
	return "static"
}

// AttrDef declares one attribute of an object class.  Dynamic attributes
// are always numeric (they evolve along a function of time); static ones
// may hold any Value kind.
type AttrDef struct {
	Name string
	Kind AttrKind
}

// Class is an object class: a named set of attributes (§2).  Spatial
// classes implicitly carry the three POSITION dynamic attributes.
type Class struct {
	name    string
	spatial bool
	attrs   []AttrDef
	byName  map[string]int
}

// NewClass declares an object class.  Attribute names must be unique; for
// spatial classes the POSITION attributes are added automatically and must
// not be declared explicitly.
func NewClass(name string, spatial bool, attrs ...AttrDef) (*Class, error) {
	if name == "" {
		return nil, fmt.Errorf("most: class name must not be empty")
	}
	c := &Class{name: name, spatial: spatial, byName: make(map[string]int)}
	if spatial {
		for _, p := range []string{XPosition, YPosition, ZPosition} {
			c.byName[p] = len(c.attrs)
			c.attrs = append(c.attrs, AttrDef{Name: p, Kind: Dynamic})
		}
	}
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("most: class %s: attribute name must not be empty", name)
		}
		if _, dup := c.byName[a.Name]; dup {
			return nil, fmt.Errorf("most: class %s: duplicate attribute %s", name, a.Name)
		}
		c.byName[a.Name] = len(c.attrs)
		c.attrs = append(c.attrs, a)
	}
	return c, nil
}

// MustClass is NewClass that panics on error; for declarations.
func MustClass(name string, spatial bool, attrs ...AttrDef) *Class {
	c, err := NewClass(name, spatial, attrs...)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// Spatial reports whether the class is spatial.
func (c *Class) Spatial() bool { return c.spatial }

// Attrs returns the attribute declarations; the slice must not be modified.
func (c *Class) Attrs() []AttrDef { return c.attrs }

// Attr looks up an attribute declaration by name.
func (c *Class) Attr(name string) (AttrDef, bool) {
	i, ok := c.byName[name]
	if !ok {
		return AttrDef{}, false
	}
	return c.attrs[i], true
}
