// mostsim drives the mobile distributed simulation of §5.2–5.3 from the
// command line: it builds a fleet where each object lives on its own
// mobile computer, runs an object query under both processing strategies,
// a relationship query, and the Answer(CQ) delivery comparison, printing
// message/byte accounting for each.
//
// Usage:
//
//	mostsim [-n 200] [-p 0.1] [-seed 1] [-http :6060]
//
// -http addr serves the observability endpoints for the duration of the
// run: /obs (metrics snapshot with dist.* traffic counters), /debug/vars
// (expvar), and /debug/pprof/* (net/http/pprof profiling).
package main

import (
	"flag"
	"fmt"
	"os"

	mostdb "github.com/mostdb/most"
	"github.com/mostdb/most/internal/dist"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/obs"
)

func main() {
	n := flag.Int("n", 200, "number of mobile nodes")
	p := flag.Float64("p", 0.1, "per-delivery disconnection probability")
	seed := flag.Int64("seed", 1, "simulation seed")
	httpAddr := flag.String("http", "", "serve /obs, /debug/vars and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()

	var reg *obs.Registry
	if *httpAddr != "" {
		reg = obs.New()
		obs.Serve(*httpAddr, "mostsim", reg)
		fmt.Fprintf(os.Stderr, "mostsim: observability endpoints on http://%s/obs and /debug/pprof/\n", *httpAddr)
	}

	build := func() *mostdb.Sim {
		sim := mostdb.NewSim(*seed)
		sim.Instrument(reg)
		vehicles, err := mostdb.NewClass("Vehicles", true)
		if err != nil {
			fail(err)
		}
		for i := 0; i < *n; i++ {
			id := mostdb.ObjectID(fmt.Sprintf("v%04d", i))
			o, err := mostdb.NewObject(id, vehicles)
			if err != nil {
				fail(err)
			}
			v := mostdb.Vector{Y: 1}
			if i%5 == 0 {
				v = mostdb.Vector{X: 1} // a fifth of the fleet heads for P
			}
			o, err = o.WithPosition(mostdb.MovingFrom(mostdb.Point{X: float64(-(i % 60)), Y: 0}, v, 0))
			if err != nil {
				fail(err)
			}
			if _, err := sim.AddNode(o); err != nil {
				fail(err)
			}
		}
		sim.Regions["P"] = mostdb.RectPolygon(0, -5, 1000, 5)
		return sim
	}

	q := mostdb.MustParseQuery(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 100 INSIDE(o, P)`)
	fmt.Printf("fleet: %d nodes, disconnection p=%.2f\n\n", *n, *p)

	fmt.Println("object query: \"who reaches region P within 100 ticks?\"")
	for _, strat := range []struct {
		name string
		s    dist.Strategy
	}{{"ship-objects", mostdb.ShipObjects}, {"broadcast-query", mostdb.BroadcastQuery}} {
		sim := build()
		sim.PDisconnect = *p
		res, err := sim.RunObjectQuery(sim.Nodes()[0], q, 200, strat.s)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %-16s answers=%-4d msgs=%-5d bytes=%-7d dropped=%d\n",
			strat.name, res.Relation.Len(), res.Traffic.Messages, res.Traffic.Bytes, res.Traffic.Dropped)
	}

	fmt.Println("\nrelationship query: \"which pairs stay within 2 of each other for 30 ticks?\"")
	rq := mostdb.MustParseQuery(`
		RETRIEVE o, n FROM Vehicles o, Vehicles n
		WHERE ALWAYS FOR 30 DIST(o, n) <= 2`)
	sim := build()
	sim.PDisconnect = *p
	res, err := sim.RunRelationshipQuery(sim.Nodes()[0], rq, 60)
	if err != nil {
		fail(err)
	}
	pairs := 0
	for _, t := range res.Relation.Tuples() {
		if t.Vals[0].String() < t.Vals[1].String() {
			pairs++
		}
	}
	fmt.Printf("  centralized        pairs=%-4d msgs=%-5d bytes=%-7d dropped=%d\n",
		pairs, res.Traffic.Messages, res.Traffic.Bytes, res.Traffic.Dropped)

	fmt.Println("\nAnswer(CQ) delivery to a moving client (200 tuples):")
	answers := make([]eval.Answer, 200)
	for i := range answers {
		start := mostdb.Tick(i * 5)
		answers[i] = eval.Answer{
			Vals:     []eval.Val{eval.NumVal(float64(i))},
			Interval: mostdb.Interval{Start: start, End: start + 8},
		}
	}
	dsim := build()
	conn := dist.RandomConnectivity(*seed, *p)
	for _, mode := range []struct {
		name string
		m    dist.DeliveryMode
		b    int
	}{
		{"immediate (B=inf)", mostdb.Immediate, 0},
		{"immediate (B=16)", mostdb.Immediate, 16},
		{"delayed", mostdb.Delayed, 0},
	} {
		st := dsim.DeliverAnswer(answers, mode.m, mode.b, 0, 1100, conn)
		fmt.Printf("  %-18s msgs=%-4d bytes=%-7d missed=%-4d peak-mem=%d\n",
			mode.name, st.Messages, st.Bytes, st.MissedDisplays, st.PeakMemory)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mostsim:", err)
	os.Exit(1)
}
