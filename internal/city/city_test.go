package city

import (
	"fmt"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/temporal"
)

// TestCityDeterminism is the seeding-contract regression: generating
// the same Spec at the same seed twice yields byte-identical object
// sets, event schedules, and query catalogs (hash-compare), and a
// different seed yields a different city.
func TestCityDeterminism(t *testing.T) {
	spec := Spec{Seed: 42, Cars: 400, Buses: 8, GridW: 12, GridH: 12, DistrictsX: 3, DistrictsY: 3}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if af, bf := a.Fingerprint(), b.Fingerprint(); af != bf {
		t.Fatalf("same spec, different city fingerprints:\n  %s\n  %s", af, bf)
	}
	if af, bf := a.Catalog().Fingerprint(), b.Catalog().Fingerprint(); af != bf {
		t.Fatalf("same spec, different catalog fingerprints:\n  %s\n  %s", af, bf)
	}

	spec.Seed = 43
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced an identical city")
	}
	if a.Catalog().Fingerprint() == c.Catalog().Fingerprint() {
		t.Fatal("different seeds produced an identical catalog")
	}
}

func TestCityInvariants(t *testing.T) {
	c, err := Generate(Spec{Seed: 7, Cars: 300, Buses: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Objects(), len(c.Cars)+len(c.Buses)+len(c.POIs); got != want {
		t.Fatalf("Objects() = %d, want %d", got, want)
	}

	// The event schedule is sorted by (tick, object) and per-object
	// ticks strictly increase (a vector can change at most once per
	// tick per object).
	lastTick := map[string]temporal.Tick{}
	for i, e := range c.Events {
		if i > 0 {
			prev := c.Events[i-1]
			if e.Tick < prev.Tick || (e.Tick == prev.Tick && e.Object < prev.Object) {
				t.Fatalf("events out of order at %d: %v after %v", i, e, prev)
			}
		}
		if last, ok := lastTick[string(e.Object)]; ok && e.Tick <= last {
			t.Fatalf("object %s has two events at tick <= %d", e.Object, e.Tick)
		}
		lastTick[string(e.Object)] = e.Tick
		// Roads are axis-aligned; so is every velocity.
		if e.Vector.X != 0 && e.Vector.Y != 0 {
			t.Fatalf("event %v: velocity not axis-aligned", e)
		}
	}

	// Districts tile the city exactly.
	span := 0.0
	for _, d := range c.Districts {
		span += (d.Bounds.Max.X - d.Bounds.Min.X) * (d.Bounds.Max.Y - d.Bounds.Min.Y)
	}
	whole := float64(c.Spec.GridW-1) * c.Spec.Block * float64(c.Spec.GridH-1) * c.Spec.Block
	if span != whole {
		t.Fatalf("district areas sum to %g, city area is %g", span, whole)
	}

	// Every POI lies inside its district's bounds (it sits on one of
	// the district's road edges).
	for _, p := range c.POIs {
		d := c.district(p.District)
		if !d.Bounds.ContainsPoint(p.Loc) {
			t.Fatalf("POI %s at %v outside district %s bounds %v", p.Name, p.Loc, p.District, d.Bounds)
		}
	}
}

// TestCatalogEvaluates parses and evaluates every template against the
// generated database: broken FTL or a region/class mismatch fails here,
// not at bench time.
func TestCatalogEvaluates(t *testing.T) {
	c, err := Generate(Spec{Seed: 3, Cars: 120, Buses: 4, GridW: 8, GridH: 8, DistrictsX: 2, DistrictsY: 2, Ticks: 40, Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	db, err := c.Database()
	if err != nil {
		t.Fatal(err)
	}
	cat := c.Catalog()
	if len(cat.Instantaneous()) == 0 || len(cat.Continuous()) == 0 {
		t.Fatalf("catalog missing a kind: %d instantaneous, %d continuous",
			len(cat.Instantaneous()), len(cat.Continuous()))
	}
	eng := query.NewEngine(db)
	opts := query.Options{Horizon: c.Spec.Horizon, Regions: cat.Regions}
	families := map[string]bool{}
	for _, tpl := range cat.Templates {
		families[tpl.Family] = true
		q, err := ftl.Parse(tpl.Src)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", tpl.Name, err, tpl.Src)
		}
		switch tpl.Kind {
		case Instantaneous:
			if _, err := eng.Instantaneous(q, opts); err != nil {
				t.Fatalf("%s: eval: %v", tpl.Name, err)
			}
		case ContinuousCQ:
			cq, err := eng.Continuous(q, opts)
			if err != nil {
				t.Fatalf("%s: register: %v", tpl.Name, err)
			}
			cq.Cancel()
		default:
			t.Fatalf("%s: unknown kind %q", tpl.Name, tpl.Kind)
		}
	}
	for _, want := range []string{"range_district", "poi_approach", "nearest_poi", "trajectory_window", "corridor", "follow_bus", "bus_meet"} {
		if !families[want] {
			t.Fatalf("catalog lost family %q (have %v)", want, families)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []Spec{
		{Seed: 1, GridW: 1, GridH: 5},
		{Seed: 1, GridW: 4, GridH: 4, DistrictsX: 9},
		{Seed: 1, SpeedMin: -1, SpeedMax: 3},
	}
	for i, spec := range cases {
		if _, err := Generate(spec); err == nil {
			t.Fatalf("case %d: Generate(%+v) succeeded, want error", i, spec)
		}
	}
}

func ExampleGenerate() {
	c, _ := Generate(Spec{Seed: 1, Cars: 100, Buses: 4, GridW: 8, GridH: 8, DistrictsX: 2, DistrictsY: 2})
	fmt.Println(len(c.Districts), "districts,", len(c.POIs), "POIs,", len(c.Cars), "cars")
	// Output: 4 districts, 12 POIs, 100 cars
}
