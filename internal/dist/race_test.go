package dist

import (
	"sync"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/most"
)

// TestSimConcurrentQueries drives one Sim from many goroutines at once —
// queries under both strategies, clock advances, and counter reads.  Run
// under -race (make race) this enforces that the shared rng, the traffic
// counters, and the clock are properly guarded; it regressed as a data
// race when Sim exposed a bare Counters field and an unguarded *rand.Rand.
func TestSimConcurrentQueries(t *testing.T) {
	s := NewSim(42)
	s.PDisconnect = 0.2
	newFleet(t, s, 20)
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`)

	var wg sync.WaitGroup
	perQuery := make([]Counters, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			issuer := s.Nodes()[g%len(s.Nodes())]
			for i := 0; i < 25; i++ {
				strat := ShipObjects
				if i%2 == 0 {
					strat = BroadcastQuery
				}
				res, err := s.RunObjectQuery(issuer, q, 10, strat)
				if err != nil {
					t.Error(err)
					return
				}
				perQuery[g].Messages += res.Traffic.Messages
				perQuery[g].Bytes += res.Traffic.Bytes
				perQuery[g].Dropped += res.Traffic.Dropped
				s.Advance(1)
				_ = s.NetStats()
				_ = s.Now()
			}
		}(g)
	}
	wg.Wait()

	net := s.NetStats()
	if net.Messages == 0 || net.Bytes == 0 {
		t.Fatalf("no traffic recorded: %+v", net)
	}
	if net.Dropped == 0 {
		t.Fatalf("PDisconnect=0.2 dropped nothing over %d messages", net.Messages)
	}
	// Per-query Traffic must attribute each query exactly its own messages:
	// the per-goroutine sums add back up to the shared counters, with no
	// double counting across concurrent issuers.
	var sum Counters
	for _, c := range perQuery {
		sum.Messages += c.Messages
		sum.Bytes += c.Bytes
		sum.Dropped += c.Dropped
	}
	if sum != net {
		t.Fatalf("per-query traffic %+v does not sum to shared counters %+v", sum, net)
	}
}

// TestSimConcurrentSelfQueries exercises the no-traffic path concurrently.
func TestSimConcurrentSelfQueries(t *testing.T) {
	s := NewSim(7)
	newFleet(t, s, 8)
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`)
	var wg sync.WaitGroup
	for _, id := range s.Nodes() {
		wg.Add(1)
		go func(id most.ObjectID) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := s.SelfQuery(id, q, 10); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if s.NetStats().Messages != 0 {
		t.Fatalf("self queries sent traffic: %+v", s.NetStats())
	}
}
