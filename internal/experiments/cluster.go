package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mostdb/most/internal/city"
	"github.com/mostdb/most/internal/cluster"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
)

// ClusterPhase is one configuration's measured half of the cluster
// benchmark: the same seeded city replayed against a 1-node and an N-node
// cluster through identical router populations.
type ClusterPhase struct {
	Nodes          int     `json:"nodes"`
	UpdatesApplied int     `json:"updates_applied"`
	UpdatesPerSec  float64 `json:"updates_per_sec"`
	RunMs          int64   `json:"run_ms"`
	Handoffs       uint64  `json:"handoffs"`
	Bounces        uint64  `json:"bounces"`
	QuerySamples   int     `json:"query_samples"`
	QueryP50Ns     int64   `json:"query_p50_ns"`
	QueryP99Ns     int64   `json:"query_p99_ns"`
}

// ClusterReport is the payload mostbench -cluster writes to
// BENCH_cluster.json: aggregate sustained update throughput of a
// spatially partitioned cluster versus a single node on the same
// workload, with scatter-gather query latency and handoff traffic.
type ClusterReport struct {
	Quick        bool         `json:"quick"`
	Seed         int64        `json:"seed"`
	Nodes        int          `json:"nodes"`
	GridX        int          `json:"grid_x"`
	GridY        int          `json:"grid_y"`
	Objects      int          `json:"objects"`
	Cars         int          `json:"cars"`
	Events       int          `json:"events"`
	Subscribers  int          `json:"subscribers"`
	UpdaterConns int          `json:"updater_conns"`
	TicksRun     int          `json:"ticks_run"`
	GenerateMs   int64        `json:"generate_ms"`
	Single       ClusterPhase `json:"single"`
	Cluster      ClusterPhase `json:"cluster"`
	// Speedup is cluster aggregate updates/sec over single-node — the
	// headline number: what spatial partitioning buys on this workload.
	Speedup float64 `json:"speedup"`
	// UpdatesPerSec mirrors Cluster.UpdatesPerSec at the top level so the
	// cluster report gates with the same shape as the city report.
	UpdatesPerSec float64 `json:"updates_per_sec"`
}

// ClusterBench measures what spatial partitioning buys: the same seeded
// city motion replay is committed twice through identical concurrent
// router populations — once against a single node owning the whole plane,
// once against a 3-node cluster of column zones — and the aggregate
// sustained updates/sec are compared.  Both phases carry the city's full
// continuous-query catalog as merged (scatter-gather) subscriptions and
// sample every instantaneous template through the router after the
// replay, so the cluster number includes the costs the architecture
// actually pays: zone routing, cross-seam handoffs, barrier rounds, and
// answer merging.
func ClusterBench(quick bool) (*ClusterReport, error) {
	spec := city.Spec{
		Seed: 2026, Cars: 24_000, Buses: 32,
		GridW: 32, GridH: 32, DistrictsX: 4, DistrictsY: 4, POIsPerDistrict: 2,
		Ticks: 12, Horizon: 20, TurnProb: 0.12, ReturnFrac: 0.2,
	}
	nodes, updConns, updateCap, qRounds := 3, 8, 48_000, 5
	if quick {
		spec.Cars, spec.Buses = 1500, 8
		spec.GridW, spec.GridH, spec.DistrictsX, spec.DistrictsY, spec.POIsPerDistrict = 12, 12, 2, 2, 2
		// A high turn rate keeps every tick saturated with motion events;
		// otherwise the replay is event-limited and fixed per-tick costs
		// (barrier rounds, seam handoffs) swamp the parallel update work
		// the benchmark is trying to measure.
		spec.TurnProb = 0.9
		updConns, updateCap, qRounds = 4, 9_600, 2
	}

	rep := &ClusterReport{Quick: quick, Seed: spec.Seed, Nodes: nodes,
		GridX: nodes, GridY: 1, Cars: spec.Cars, UpdaterConns: updConns}

	t0 := time.Now()
	cty, err := city.Generate(spec)
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	rep.GenerateMs = time.Since(t0).Milliseconds()
	rep.Events = len(cty.Events)
	rep.Objects = cty.Objects()
	rep.Subscribers = len(cty.Catalog().Continuous())
	rep.TicksRun = int(spec.Ticks)

	single, err := runClusterPhase(1, cty, spec, updConns, updateCap, qRounds)
	if err != nil {
		return nil, fmt.Errorf("single-node phase: %w", err)
	}
	rep.Single = *single

	clustered, err := runClusterPhase(nodes, cty, spec, updConns, updateCap, qRounds)
	if err != nil {
		return nil, fmt.Errorf("%d-node phase: %w", nodes, err)
	}
	rep.Cluster = *clustered

	rep.UpdatesPerSec = rep.Cluster.UpdatesPerSec
	if rep.Single.UpdatesPerSec > 0 {
		rep.Speedup = rep.Cluster.UpdatesPerSec / rep.Single.UpdatesPerSec
	}
	return rep, nil
}

// runClusterPhase boots an n-node cluster seeded with the city, replays
// the capped motion schedule through updConns concurrent routers, then
// samples scatter-gather latency on the instantaneous catalog.
func runClusterPhase(n int, cty *city.City, spec city.Spec, updConns, updateCap, qRounds int) (*ClusterPhase, error) {
	cat := cty.Catalog()
	side := float64(spec.GridW-1) * 100
	cl, err := cluster.Start(cluster.Config{
		Nodes: n, GridX: n, GridY: 1,
		Bounds:     geom.Rect{Max: geom.Point{X: side, Y: side}},
		Replicated: []string{city.BusClass.Name(), city.POIClass.Name()},
		Seed:       cty.Database,
		Opts:       query.Options{Horizon: spec.Horizon, Regions: cat.Regions},
	})
	if err != nil {
		return nil, fmt.Errorf("start: %w", err)
	}
	defer cl.Close()

	routers := make([]*cluster.Router, updConns)
	for i := range routers {
		r, err := cl.Router(nil)
		if err != nil {
			return nil, fmt.Errorf("router %d: %w", i, err)
		}
		defer r.Close()
		routers[i] = r
	}
	coord := routers[0]

	// The full continuous catalog rides along as merged subscriptions, so
	// per-update cost includes cross-node CQ maintenance and merging.
	for _, tpl := range cat.Continuous() {
		sub, err := coord.Subscribe(tpl.Src, spec.Horizon)
		if err != nil {
			return nil, fmt.Errorf("subscribe %s: %w", tpl.Name, err)
		}
		defer sub.Close()
	}

	byTick := make(map[temporal.Tick][]wire.UpdateOp)
	for _, e := range cty.Events {
		byTick[e.Tick] = append(byTick[e.Tick], wire.UpdateOp{
			Op: wire.OpSetMotion, ID: string(e.Object), VX: e.Vector.X, VY: e.Vector.Y,
		})
	}
	perTick := updateCap / int(spec.Ticks)
	if perTick < 1 {
		perTick = 1
	}

	phase := &ClusterPhase{Nodes: n}
	start := time.Now()
	for tk := temporal.Tick(1); tk <= spec.Ticks && phase.UpdatesApplied < updateCap; tk++ {
		if _, err := coord.Advance(1); err != nil {
			return nil, fmt.Errorf("advance: %w", err)
		}
		ops := byTick[tk]
		// Stride-sample oversized ticks so the capped replay spans the
		// whole event list (same discipline as CityBench).
		if len(ops) > perTick {
			stride := len(ops) / perTick
			sampled := make([]wire.UpdateOp, 0, perTick)
			for i := 0; i < len(ops) && len(sampled) < perTick; i += stride {
				sampled = append(sampled, ops[i])
			}
			ops = sampled
		}
		var (
			wg     sync.WaitGroup
			updErr atomic.Value
		)
		per := (len(ops) + updConns - 1) / updConns
		for w := 0; w < updConns; w++ {
			lo, hi := w*per, (w+1)*per
			if hi > len(ops) {
				hi = len(ops)
			}
			if lo >= hi {
				break
			}
			r, part := routers[w], ops[lo:hi]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for len(part) > 0 {
					k := 64
					if k > len(part) {
						k = len(part)
					}
					if _, err := r.UpdateBatch(part[:k]); err != nil {
						updErr.Store(fmt.Errorf("update batch: %w", err))
						return
					}
					part = part[k:]
				}
			}()
		}
		wg.Wait()
		if err, _ := updErr.Load().(error); err != nil {
			return nil, err
		}
		phase.UpdatesApplied += len(ops)
	}
	elapsed := time.Since(start)
	phase.RunMs = elapsed.Milliseconds()
	if elapsed > 0 {
		phase.UpdatesPerSec = float64(phase.UpdatesApplied) / elapsed.Seconds()
	}

	var qlats []time.Duration
	for round := 0; round < qRounds; round++ {
		for _, tpl := range cat.Instantaneous() {
			t0 := time.Now()
			if _, _, err := coord.Query(tpl.Src, spec.Horizon); err != nil {
				return nil, fmt.Errorf("query %s: %w", tpl.Name, err)
			}
			qlats = append(qlats, time.Since(t0))
		}
	}
	phase.QuerySamples = len(qlats)
	phase.QueryP50Ns = pctDur(qlats, 0.50).Nanoseconds()
	phase.QueryP99Ns = pctDur(qlats, 0.99).Nanoseconds()

	for i := 0; i < n; i++ {
		out, _, _, b := cl.Node(i).Stats()
		phase.Handoffs += out
		phase.Bounces += b
	}
	return phase, nil
}

// Table renders the cluster benchmark for the terminal.
func (r *ClusterReport) Table() *Table {
	t := &Table{
		ID:      "CLUSTER",
		Title:   fmt.Sprintf("spatially partitioned cluster vs single node (%d objects, %d routers, loopback TCP)", r.Objects, r.UpdaterConns),
		Claim:   "sharding the plane across nodes raises aggregate sustained update throughput; scatter-gather keeps catalog queries and merged CQs correct at bounded latency",
		Columns: []string{"config", "updates/s", "updates", "handoffs (bounces)", "query p50", "query p99"},
	}
	row := func(label string, p ClusterPhase) {
		t.AddRow(label,
			fmt.Sprintf("%.0f", p.UpdatesPerSec),
			itoa(p.UpdatesApplied),
			fmt.Sprintf("%d (%d)", p.Handoffs, p.Bounces),
			ns(time.Duration(p.QueryP50Ns)), ns(time.Duration(p.QueryP99Ns)))
	}
	row("single node", r.Single)
	row(fmt.Sprintf("%d-node cluster", r.Cluster.Nodes), r.Cluster)
	t.AddRow("speedup", fmt.Sprintf("%.2fx", r.Speedup), "-", "-", "-", "-")
	return t
}
