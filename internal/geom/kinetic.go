package geom

import "math"

// MovingPoint is a point-object whose position is a linear function of
// time: the paper's "higher level of data abstraction, where an object's
// motion vector (rather than its position) is represented as an attribute
// of the object" (§1).  At reference time T the object is at P; at time t
// it is at P + V*(t-T).
type MovingPoint struct {
	P Point   // position at reference time T
	V Vector  // motion vector, distance per clock tick
	T float64 // reference time (ticks)
}

// At returns the object's position at absolute time t.
func (m MovingPoint) At(t float64) Point { return m.P.Add(m.V.Scale(t - m.T)) }

// Static wraps a stationary point as a MovingPoint.
func Static(p Point) MovingPoint { return MovingPoint{P: p} }

// DistWithinTimes returns the set of real times t in [lo,hi] at which
// DIST(a(t), b(t)) <= r.  Relative motion is linear, so the squared
// distance is a quadratic in t and the solution is a single interval (or
// everything, or nothing).  This is the kinetic form of the paper's DIST
// method, and the engine behind queries like "retrieve all the airplanes
// that will come within 30 miles of the airport in the next 10 minutes".
func DistWithinTimes(a, b MovingPoint, r, lo, hi float64) RealSet {
	if r < 0 {
		return RealSet{}
	}
	// Relative position at time t: d0 + dv*t, with both expressed at t=0.
	d0 := a.At(0).Sub(b.At(0))
	dv := a.V.Sub(b.V)
	// |d0 + dv t|^2 <= r^2  =>  A t^2 + B t + C <= 0.
	A := dv.Dot(dv)
	B := 2 * d0.Dot(dv)
	C := d0.Dot(d0) - r*r
	return solveQuadraticLE(A, B, C, lo, hi)
}

// DistBeyondTimes returns the times in [lo,hi] at which DIST(a,b) >= r.
func DistBeyondTimes(a, b MovingPoint, r, lo, hi float64) RealSet {
	return DistWithinTimes(a, b, r, lo, hi).ComplementWithin(lo, hi)
}

// QuadraticLE returns {t in [lo,hi] : A t^2 + B t + C <= 0} — the shared
// root-solving primitive behind DIST predicates and quadratic (accelerating)
// dynamic attributes.
func QuadraticLE(A, B, C, lo, hi float64) RealSet {
	return solveQuadraticLE(A, B, C, lo, hi)
}

// solveQuadraticLE returns {t in [lo,hi] : A t^2 + B t + C <= 0}.
func solveQuadraticLE(A, B, C, lo, hi float64) RealSet {
	const eps = 1e-12
	if math.Abs(A) < eps {
		if math.Abs(B) < eps {
			if C <= eps {
				return NewRealSet(RealInterval{lo, hi})
			}
			return RealSet{}
		}
		// Linear: B t + C <= 0.
		root := -C / B
		if B > 0 {
			return NewRealSet(RealInterval{lo, math.Min(hi, root)})
		}
		return NewRealSet(RealInterval{math.Max(lo, root), hi})
	}
	disc := B*B - 4*A*C
	if A > 0 {
		if disc < 0 {
			return RealSet{} // parabola opens up, never <= 0
		}
		s := math.Sqrt(disc)
		t1, t2 := (-B-s)/(2*A), (-B+s)/(2*A)
		return NewRealSet(RealInterval{math.Max(lo, t1), math.Min(hi, t2)})
	}
	// A < 0: <= 0 outside the roots.
	if disc < 0 {
		return NewRealSet(RealInterval{lo, hi})
	}
	s := math.Sqrt(disc)
	t1, t2 := (-B+s)/(2*A), (-B-s)/(2*A) // t1 <= t2 for A < 0
	return NewRealSet(
		RealInterval{lo, math.Min(hi, t1)},
		RealInterval{math.Max(lo, t2), hi},
	)
}

// InsideTimes returns the set of real times t in [lo,hi] at which the
// moving point is inside polygon pg (boundary included): the kinetic form
// of the paper's INSIDE(o, P) method.  The object's path is a straight
// line, so it alternates between inside and outside at the times it crosses
// polygon edges; we collect all crossing times and classify each maximal
// crossing-free span by testing its midpoint.
func InsideTimes(m MovingPoint, pg Polygon, lo, hi float64) RealSet {
	if lo > hi {
		return RealSet{}
	}
	if m.V.IsZero() {
		if pg.Contains(m.P) {
			return NewRealSet(RealInterval{lo, hi})
		}
		return RealSet{}
	}
	cuts := []float64{lo, hi}
	vs := pg.Vertices()
	n := len(vs)
	for i := 0; i < n; i++ {
		a, b := vs[i], vs[(i+1)%n]
		for _, t := range segmentCrossTimes(m, a, b, lo, hi) {
			cuts = append(cuts, t)
		}
	}
	return classifySpans(cuts, lo, hi, func(t float64) bool { return pg.Contains(m.At(t)) })
}

// OutsideTimes returns the times in [lo,hi] at which the moving point is
// strictly outside the polygon: the paper's OUTSIDE(o, P) method.
func OutsideTimes(m MovingPoint, pg Polygon, lo, hi float64) RealSet {
	return InsideTimes(m, pg, lo, hi).ComplementWithin(lo, hi)
}

// segmentCrossTimes returns the times in [lo,hi] at which the moving point's
// line crosses the closed segment ab (XY plane).
func segmentCrossTimes(m MovingPoint, a, b Point, lo, hi float64) []float64 {
	// m.At(t) = p0 + v*t (re-expressed at t=0); solve p0 + v t = a + s (b-a).
	p0 := m.At(0)
	e := b.Sub(a)
	// | v.X  -e.X | (t)   (a.X - p0.X)
	// | v.Y  -e.Y | (s) = (a.Y - p0.Y)
	det := m.V.X*(-e.Y) - (-e.X)*m.V.Y
	rx, ry := a.X-p0.X, a.Y-p0.Y
	const eps = 1e-12
	if math.Abs(det) > eps {
		t := (rx*(-e.Y) - (-e.X)*ry) / det
		s := (m.V.X*ry - m.V.Y*rx) / det
		if s >= -eps && s <= 1+eps && t >= lo-eps && t <= hi+eps {
			return []float64{t}
		}
		return nil
	}
	// Path parallel to the edge.  If collinear, entering/leaving happens at
	// the projections of the segment endpoints onto the path.
	cross := m.V.X*ry - m.V.Y*rx
	if math.Abs(cross) > eps*math.Max(1, m.V.Norm()) {
		return nil // parallel, never meets
	}
	var out []float64
	for _, q := range []Point{a, b} {
		var t float64
		if math.Abs(m.V.X) > math.Abs(m.V.Y) {
			t = (q.X - p0.X) / m.V.X
		} else if math.Abs(m.V.Y) > eps {
			t = (q.Y - p0.Y) / m.V.Y
		} else {
			continue
		}
		if t >= lo-eps && t <= hi+eps {
			out = append(out, t)
		}
	}
	return out
}

// classifySpans sorts the cut times and returns the union of spans whose
// midpoint satisfies pred.
func classifySpans(cuts []float64, lo, hi float64, pred func(float64) bool) RealSet {
	clipped := cuts[:0]
	for _, c := range cuts {
		if c >= lo && c <= hi {
			clipped = append(clipped, c)
		}
	}
	sortFloats(clipped)
	var out []RealInterval
	for i := 0; i+1 < len(clipped); i++ {
		a, b := clipped[i], clipped[i+1]
		if b-a < 1e-12 {
			// Degenerate span: a touch point.  Include it if satisfied there.
			if pred(a) {
				out = append(out, RealInterval{a, b})
			}
			continue
		}
		if pred((a + b) / 2) {
			out = append(out, RealInterval{a, b})
		}
	}
	return NewRealSet(out...)
}

func sortFloats(xs []float64) {
	// Insertion sort: cut lists are tiny (2 + crossings).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
