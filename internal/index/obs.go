package index

import (
	"github.com/mostdb/most/internal/obs"
)

// ixObs is the motion index's pre-resolved instrument set, held behind an
// atomic pointer so probes pay one load plus a nil branch when
// observability is off.
//
// Metric names:
//
//	index.probes        CandidatesInRect / InsidePolygonDuring calls
//	index.candidates    distinct ids returned across all probes
//	index.inserts       objects inserted (Insert and InsertBatch)
//	index.updates       trajectory replacements (Update)
//	index.rebuilds      full window rebuilds
type ixObs struct {
	probes     *obs.Counter
	candidates *obs.Counter
	inserts    *obs.Counter
	updates    *obs.Counter
	rebuilds   *obs.Counter
}

func (o *ixObs) probe(n int) {
	if o == nil {
		return
	}
	o.probes.Inc()
	o.candidates.Add(int64(n))
}

func (o *ixObs) insert(n int) {
	if o == nil {
		return
	}
	o.inserts.Add(int64(n))
}

func (o *ixObs) update() {
	if o == nil {
		return
	}
	o.updates.Inc()
}

func (o *ixObs) rebuild() {
	if o == nil {
		return
	}
	o.rebuilds.Inc()
}

// Instrument attaches an observability registry to the index, recording
// probes, returned candidates, inserts, updates, and rebuilds.
// Instrument(nil) detaches.  Safe to call concurrently with probes.
func (ix *MotionIndex) Instrument(reg *obs.Registry) {
	if reg == nil {
		ix.obsv.Store(nil)
		return
	}
	ix.obsv.Store(&ixObs{
		probes:     reg.Counter("index.probes"),
		candidates: reg.Counter("index.candidates"),
		inserts:    reg.Counter("index.inserts"),
		updates:    reg.Counter("index.updates"),
		rebuilds:   reg.Counter("index.rebuilds"),
	})
}
