package experiments

import (
	"fmt"

	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/temporal"
)

// E11IndexMechanisms carries out the paper's §7 future-work item: "we
// intend to experimentally compare various mechanisms for indexing dynamic
// attributes".  It compares the R-tree index, a uniform (time, value) grid,
// and the no-index full scan on instantaneous and continuous range
// queries, across fleet sizes.
func E11IndexMechanisms(quick bool) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "index mechanisms: R-tree vs uniform grid vs scan (§7 future work)",
		Claim:   "both spatial-index mechanisms beat the scan and answer continuous queries from one probe; the grid trades memory-at-resolution for simpler probes",
		Columns: []string{"objects", "scan instant", "rtree instant", "grid instant", "rtree continuous", "grid continuous"},
	}
	sizes := []int{1000, 10000, 50000}
	reps := 100
	if quick {
		sizes = []int{1000, 10000}
		reps = 30
	}
	const horizon = temporal.Tick(1000)
	for _, n := range sizes {
		rt, attrs := indexedFleet(n, horizon, 3, 5)
		grid := index.NewGridIndex(0, horizon, -4200, 4200, 64, 64)
		for id, a := range attrs {
			if err := grid.Insert(id, a); err != nil {
				panic(err)
			}
		}
		lo, hi := 100.0, 104.0
		at := temporal.Tick(500)
		// All three mechanisms must agree.
		want := scanRange(attrs, lo, hi, at)
		if got := len(rt.InstantQuery(lo, hi, at)); got != want {
			panic(fmt.Sprintf("E11: rtree answered %d, scan %d", got, want))
		}
		if got := len(grid.InstantQuery(lo, hi, at)); got != want {
			panic(fmt.Sprintf("E11: grid answered %d, scan %d", got, want))
		}
		scanT := timeIt(reps, func() { scanRange(attrs, lo, hi, at) })
		rtT := timeIt(reps, func() { rt.InstantQuery(lo, hi, at) })
		gridT := timeIt(reps, func() { grid.InstantQuery(lo, hi, at) })
		rtC := timeIt(reps/5+1, func() { rt.ContinuousQuery(lo, hi, 0) })
		gridC := timeIt(reps/5+1, func() { grid.ContinuousQuery(lo, hi, 0) })
		t.AddRow(itoa(n), ns(scanT), ns(rtT), ns(gridT), ns(rtC), ns(gridC))
	}
	t.Notes = append(t.Notes, "grid: 64x64 cells over values [-4200,4200] x the time horizon; answers cross-checked for equality against the scan")
	return t
}
