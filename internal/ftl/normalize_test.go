package ftl

import (
	"reflect"
	"testing"
)

func TestNormalize(t *testing.T) {
	a := Inside{Obj: Var{Name: "o"}, Region: Var{Name: "P"}}
	b := Compare{Op: "<", L: AttrRef{Obj: Var{Name: "o"}, Path: []string{"PRICE"}}, R: Num{V: 5}}
	cases := []struct {
		name string
		in   Formula
		want Formula
	}{
		{"implies", Implies{L: a, R: b}, Or{L: Not{F: a}, R: b}},
		{"double-neg", Not{F: Not{F: a}}, a},
		{"quad-neg", Not{F: Not{F: Not{F: Not{F: a}}}}, a},
		{"not-true", Not{F: BoolLit{V: true}}, BoolLit{V: false}},
		{"not-false", Not{F: BoolLit{V: false}}, BoolLit{V: true}},
		{"implies-to-demorgan-input", Not{F: Implies{L: a, R: b}},
			Not{F: Or{L: Not{F: a}, R: b}}},
		{"nested-temporal",
			Always{F: Implies{L: a, R: Eventually{F: Not{F: Not{F: b}}}}},
			Always{F: Or{L: Not{F: a}, R: Eventually{F: b}}}},
		{"assign-body",
			Assign{Var: "d", Term: DistOf{A: Var{Name: "o"}, B: Var{Name: "p"}},
				Body: Implies{L: a, R: b}},
			Assign{Var: "d", Term: DistOf{A: Var{Name: "o"}, B: Var{Name: "p"}},
				Body: Or{L: Not{F: a}, R: b}}},
		{"atom-unchanged", b, b},
		{"until-recurses", Until{L: Not{F: Not{F: a}}, R: b}, Until{L: a, R: b}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Normalize(c.in)
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("Normalize(%s)\n got %s\nwant %s", c.in, got, c.want)
			}
		})
	}
}

func TestNormalizePreservesFreeVars(t *testing.T) {
	srcs := []string{
		"RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P) IMPLIES o.PRICE < 5",
		"RETRIEVE o FROM Vehicles o WHERE NOT (NOT INSIDE(o, P))",
		"RETRIEVE o, p FROM Vehicles o, Vehicles p WHERE ALWAYS (DIST(o, p) < 3 IMPLIES INSIDE(o, P))",
		"RETRIEVE o FROM Vehicles o WHERE [d <- DIST(o, o)] (d < 1 IMPLIES INSIDE(o, P))",
	}
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		before := FreeVars(q.Where)
		after := FreeVars(Normalize(q.Where))
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("%q: free vars changed %v -> %v", src, before, after)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := Always{F: Implies{L: Not{F: Not{F: BoolLit{V: true}}}, R: Inside{Obj: Var{Name: "o"}, Region: Var{Name: "P"}}}}
	once := Normalize(f)
	twice := Normalize(once)
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("not idempotent:\n once %s\ntwice %s", once, twice)
	}
}
