// Package query implements the three MOST query types of §2.3 on top of
// the FTL evaluator:
//
//   - an instantaneous query at time t is evaluated once on the implicit
//     future history beginning at t;
//   - a continuous query is evaluated once into the materialized relation
//     Answer(CQ) and presented per clock tick; "reevaluation has to occur
//     only if the motion vector ... changes", which the engine performs by
//     subscribing to the database's explicit updates;
//   - a persistent query at time t is a sequence of instantaneous queries
//     all anchored at t, re-run whenever the database is updated, over the
//     actual logged history concatenated with the current implicit future.
//     (The paper defines these semantics and postpones evaluation to future
//     work; this package implements them.)
//
// Continuous and persistent queries coupled with an action form the
// temporal triggers of §2.3.
package query

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/temporal"
)

// Options configure one query evaluation.
type Options struct {
	// Horizon is the query expiry: how far into the future the evaluation
	// window extends (§2.3).  Zero selects DefaultHorizon.
	Horizon temporal.Tick
	// Regions names the polygons referenced by INSIDE/OUTSIDE.
	Regions map[string]geom.Polygon
	// Params binds free variables to external constants.
	Params map[string]eval.Val
	// MaxAssignStates and BisectSamples tune the evaluator (see eval).
	MaxAssignStates int
	BisectSamples   int
	// MotionIndex, when set, accelerates INSIDE atoms: the evaluator probes
	// the index for candidate objects instead of examining every object
	// (§4).  The index must cover the same objects the query ranges over
	// and a window containing [now, now+horizon].
	MotionIndex *index.MotionIndex
	// Parallelism fans the evaluator's per-object and per-binding loops out
	// over a bounded worker pool: 0 or 1 evaluates sequentially, n > 1 uses
	// n workers, and any negative value uses GOMAXPROCS.  The answer is
	// identical at every setting (results merge in deterministic
	// instantiation order); only the wall-clock time changes.
	Parallelism int
	// DisableDelta forces continuous queries registered with these options
	// to maintain their answer by full reevaluation only, never per-object
	// patches.  A measurement/debugging knob (mostbench -delta uses it as
	// the baseline); the answers are identical either way.
	DisableDelta bool
}

// DefaultHorizon is the query expiry used when Options.Horizon is zero.
const DefaultHorizon temporal.Tick = 1000

func (o Options) horizon() temporal.Tick {
	if o.Horizon <= 0 {
		return DefaultHorizon
	}
	return o.Horizon
}

// Engine evaluates queries against a MOST database and maintains the
// materialized answers of registered continuous and persistent queries.
type Engine struct {
	db *most.Database

	mu         sync.Mutex
	nextID     int
	nextPlanID uint64
	plans      map[string]*sharedPlan
	persistent map[int]*Persistent

	// snap is the pre-sorted registration snapshot onUpdate dispatches
	// from, rebuilt under mu on every (un)registration: the per-update
	// hot path never locks, allocates, or sorts.
	snap atomic.Pointer[regSnapshot]

	// Evals counts full query evaluations, for the experiments comparing
	// evaluate-once against per-tick reevaluation.
	evals int

	// obsReg is the engine's observability registry; nil (the default)
	// disables every hook at the cost of one branch.  Held atomically so
	// Instrument may race with running queries.
	obsReg atomic.Pointer[obs.Registry]
}

// regSnapshot is the immutable dispatch view of the registered queries.
type regSnapshot struct {
	plans      []*sharedPlan // sorted by planID
	persistent []*Persistent // sorted by id
	// maxHorizon is the widest horizon across plans: ROI motion envelopes
	// are computed once per update over [tick, tick+maxHorizon], which is
	// conservative (a wider envelope can only keep more plans relevant).
	maxHorizon temporal.Tick
	// roi is true when at least one plan can skip spatially irrelevant
	// updates, so envelope computation is worth paying for at all.
	roi bool
}

// rebuildSnapshot recomputes the dispatch snapshot.  Callers hold e.mu.
func (e *Engine) rebuildSnapshot() {
	s := &regSnapshot{}
	if len(e.plans) > 0 {
		s.plans = make([]*sharedPlan, 0, len(e.plans))
		for _, p := range e.plans {
			s.plans = append(s.plans, p)
			if h := p.opts.horizon(); h > s.maxHorizon {
				s.maxHorizon = h
			}
			if p.roi.any() {
				s.roi = true
			}
		}
		sort.Slice(s.plans, func(i, j int) bool { return s.plans[i].planID < s.plans[j].planID })
	}
	if len(e.persistent) > 0 {
		s.persistent = make([]*Persistent, 0, len(e.persistent))
		for _, pq := range e.persistent {
			s.persistent = append(s.persistent, pq)
		}
		sort.Slice(s.persistent, func(i, j int) bool { return s.persistent[i].id < s.persistent[j].id })
	}
	e.snap.Store(s)
}

// NewEngine returns an engine bound to db, subscribed to its updates.
func NewEngine(db *most.Database) *Engine {
	e := &Engine{
		db:         db,
		plans:      map[string]*sharedPlan{},
		persistent: map[int]*Persistent{},
	}
	e.snap.Store(&regSnapshot{})
	db.Subscribe(e.onUpdate)
	return e
}

// Instrument attaches an observability registry to the engine: every query
// evaluation then records per-type counters, latency histograms, and a span
// tree per root stage (parse, rewrite, snapshot, bind, index_probe,
// subformula_eval, answer_assembly).  Instrument(nil) detaches.  Safe to
// call concurrently with running queries.
func (e *Engine) Instrument(reg *obs.Registry) {
	e.obsReg.Store(reg)
}

// reg returns the attached registry (nil when uninstrumented).
func (e *Engine) reg() *obs.Registry {
	return e.obsReg.Load()
}

// Evaluations returns the number of full FTL evaluations performed.
func (e *Engine) Evaluations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evals
}

func (e *Engine) countEval() {
	e.mu.Lock()
	e.evals++
	e.mu.Unlock()
}

// context builds an eval context over the current database state, hanging
// stage spans (snapshot, bind) off sp when tracing is enabled.
func (e *Engine) context(q *ftl.Query, opts Options, now temporal.Tick, sp *obs.Span) (*eval.Context, error) {
	// Snapshot is a copy-on-read view: the evaluator works off immutable
	// object revisions, so updaters keep committing while the query runs.
	snap := sp.Child("snapshot")
	objects := e.db.Snapshot()
	snap.Annotate("objects", int64(len(objects)))
	snap.End()
	ctx := &eval.Context{
		Now:             now,
		Horizon:         opts.horizon(),
		Objects:         objects,
		Regions:         opts.Regions,
		Params:          opts.Params,
		Domains:         map[string][]eval.Val{},
		MaxAssignStates: opts.MaxAssignStates,
		BisectSamples:   opts.BisectSamples,
		Parallelism:     opts.Parallelism,
		Obs:             e.reg(),
		Span:            sp,
	}
	if ix := opts.MotionIndex; ix != nil {
		ctx.InsideCandidates = func(pg geom.Polygon, w temporal.Interval) []most.ObjectID {
			return ix.CandidatesInRect(pg.Bounds(), float64(w.Start), float64(w.End))
		}
	}
	bind := sp.Child("bind")
	err := ctx.BindDomains(q, eval.IDsOf(e.db))
	bind.End()
	if err != nil {
		return nil, err
	}
	return ctx, nil
}

// evalRelation is the shared evaluation path behind all three query types:
// rewrite (ftl.Normalize), context construction, and the FTL evaluation
// itself, all recorded as child stages of sp.
func (e *Engine) evalRelation(q *ftl.Query, opts Options, now temporal.Tick, sp *obs.Span) (*eval.Relation, error) {
	rw := sp.Child("rewrite")
	nq := ftl.NormalizeQuery(*q)
	rw.End()
	ctx, err := e.context(&nq, opts, now, sp)
	if err != nil {
		return nil, err
	}
	rel, err := eval.EvalQuery(&nq, ctx)
	if err != nil {
		return nil, err
	}
	e.countEval()
	return rel, nil
}

// Row is one presented answer instantiation.
type Row []eval.Val

// Instantaneous evaluates q at the current time and returns the
// instantiations satisfying it now, i.e. whose answer interval contains the
// entry tick (§2.3, §3.5).
func (e *Engine) Instantaneous(q *ftl.Query, opts Options) ([]Row, error) {
	now := e.db.Now()
	rel, err := e.InstantaneousRelation(q, opts)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, vals := range rel.At(now) {
		rows = append(rows, Row(vals))
	}
	return rows, nil
}

// Query parses, normalizes, and evaluates src as an instantaneous query.
// This is the text entry point; the parse is recorded as the first stage of
// the query's span tree.
func (e *Engine) Query(src string, opts Options) ([]Row, error) {
	reg := e.reg()
	reg.Counter("query.instantaneous").Inc()
	sp := reg.StartSpan("query.instantaneous")
	defer sp.End()
	t0 := reg.Start()
	defer reg.Histogram("query.instantaneous_ns").Since(t0)

	ps := sp.Child("parse")
	q, err := ftl.Parse(src)
	ps.End()
	if err != nil {
		return nil, err
	}
	now := e.db.Now()
	rel, err := e.evalRelation(q, opts, now, sp)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, vals := range rel.At(now) {
		rows = append(rows, Row(vals))
	}
	return rows, nil
}

// InstantaneousRelation evaluates q at the current time and returns the
// full Answer relation (every instantiation with its interval set).
func (e *Engine) InstantaneousRelation(q *ftl.Query, opts Options) (*eval.Relation, error) {
	reg := e.reg()
	reg.Counter("query.instantaneous").Inc()
	sp := reg.StartSpan("query.instantaneous")
	defer sp.End()
	t0 := reg.Start()
	defer reg.Histogram("query.instantaneous_ns").Since(t0)
	return e.evalRelation(q, opts, e.db.Now(), sp)
}

// onUpdate maintains registered queries after an explicit update (§2.3:
// "a continuous query CQ has to be reevaluated when an update occurs that
// may change the set of tuples Answer(CQ)").  Dispatch runs off the
// pre-sorted registration snapshot in three cheap stages — class filter,
// then the plans' spatial relevance filter against the update's motion
// envelope, then fan-out — so an update no registered query ranges over
// costs a snapshot load and a scan, with no locking or allocation.
// Independent plans maintain concurrently on a pool bounded by
// GOMAXPROCS.  With a single updater, onUpdate returns only once every
// registered query reflects the update — exactly the sequential
// semantics; under concurrent updaters, work already in flight absorbs
// this update instead: a burst of K updates to distinct objects drains as
// K per-object patches in one round rather than K full joins (see
// sharedPlan.maintain/drain).
func (e *Engine) onUpdate(u most.Update) {
	s := e.snap.Load()
	if len(s.plans) == 0 && len(s.persistent) == 0 {
		return
	}
	class := updateClass(u)
	var pbuf [16]*sharedPlan
	plans := pbuf[:0]
	for _, p := range s.plans {
		if class == "" || p.classes[class] {
			plans = append(plans, p)
		}
	}
	var qbuf [8]*Persistent
	pqs := qbuf[:0]
	for _, pq := range s.persistent {
		if class == "" || pq.classes[class] {
			pqs = append(pqs, pq)
		}
	}
	if len(plans) > 0 && s.roi && class != "" {
		if env, ok := motionEnvelope(u, u.Tick, u.Tick.Add(s.maxHorizon)); ok {
			kept := plans[:0]
			skipped := 0
			for _, p := range plans {
				if p.canSkip(class, u.Tick, env) {
					skipped++
					continue
				}
				kept = append(kept, p)
			}
			plans = kept
			if skipped > 0 {
				e.reg().Counter("query.continuous.skipped_irrelevant").Add(int64(skipped))
			}
		}
	}
	switch len(plans) + len(pqs) {
	case 0:
		return
	case 1:
		if len(plans) == 1 {
			plans[0].maintain(u)
		} else {
			pqs[0].reevaluate()
		}
		return
	}
	work := make([]func(), 0, len(plans)+len(pqs))
	for _, p := range plans {
		p := p
		work = append(work, func() { p.maintain(u) })
	}
	for _, pq := range pqs {
		work = append(work, pq.reevaluate)
	}
	runBounded(work)
}

// runBounded runs the tasks on at most GOMAXPROCS goroutines and waits for
// all of them.  A single task runs inline.
func runBounded(work []func()) {
	if len(work) == 0 {
		return
	}
	if len(work) == 1 {
		work[0]()
		return
	}
	nw := runtime.GOMAXPROCS(0)
	if nw > len(work) {
		nw = len(work)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(work) {
					return
				}
				work[i]()
			}
		}()
	}
	wg.Wait()
}

// errUnregistered guards handle reuse after Cancel.
var errUnregistered = fmt.Errorf("query: handle was cancelled")
