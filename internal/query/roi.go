package query

import (
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// roiPlan is a shared plan's coarse spatial relevance filter: for a class
// whose every FROM-variable is INSIDE-guarded, a tuple binding an object
// of that class can only be satisfied at a tick s if the object is inside
// one of the guard regions at some tick in [s, s+depth].  An update whose
// old AND new motion envelopes over [u.Tick, u.Tick+horizon] both miss the
// union of those regions therefore cannot add, remove, or change any
// answer presentation in the window — dispatch skips the plan entirely.
//
// Skipping is gated three ways for soundness:
//   - the formula must be bounded (analysis.Bounded): an unbounded
//     operator looks past any finite envelope window;
//   - the update's tick must fall inside the installed answer's validity
//     window (u.Tick <= anchor+horizon-depth, tracked in
//     sharedPlan.validUntil): past it the answer must re-anchor, so the
//     update has to be dispatched even if spatially irrelevant;
//   - every FROM-variable over the updated class must be guarded, with
//     every guard region resolvable in Options.Regions at registration.
type roiPlan struct {
	// bounds maps each skippable class to the union bounding box of its
	// guard regions.  Classes absent from the map are never skipped.
	bounds map[string]rect2
}

// any reports whether the plan can skip updates of at least one class.
func (r roiPlan) any() bool { return len(r.bounds) > 0 }

// rect2 is a closed planar box.  geom.Rect is not used here because its
// Intersects also compares Z ranges; motion envelopes are planar.
type rect2 struct {
	minX, minY, maxX, maxY float64
}

func (a rect2) intersects(b rect2) bool {
	return a.minX <= b.maxX && b.minX <= a.maxX &&
		a.minY <= b.maxY && b.minY <= a.maxY
}

func (a rect2) union(b rect2) rect2 {
	if b.minX < a.minX {
		a.minX = b.minX
	}
	if b.minY < a.minY {
		a.minY = b.minY
	}
	if b.maxX > a.maxX {
		a.maxX = b.maxX
	}
	if b.maxY > a.maxY {
		a.maxY = b.maxY
	}
	return a
}

// newROIPlan derives the relevance filter from the normalized query.  It
// is conservative: any shape it cannot prove guarded simply yields no
// entry, and the plan then treats every class-relevant update as relevant.
func newROIPlan(q *ftl.Query, opts Options, analysis ftl.DeltaAnalysis) roiPlan {
	if !analysis.Bounded || analysis.Depth > opts.horizon() {
		return roiPlan{}
	}
	nq := ftl.NormalizeQuery(*q)
	byClass := map[string][]string{}
	for _, b := range nq.Bindings {
		byClass[b.Class] = append(byClass[b.Class], b.Var)
	}
	bounds := map[string]rect2{}
class:
	for class, vars := range byClass {
		var box rect2
		first := true
		for _, v := range vars {
			regs, ok := guardRegions(nq.Where, v)
			if !ok {
				continue class
			}
			for _, name := range regs {
				pg, ok := opts.Regions[name]
				if !ok || pg.Len() == 0 {
					continue class
				}
				r := pg.Bounds()
				rb := rect2{minX: r.Min.X, minY: r.Min.Y, maxX: r.Max.X, maxY: r.Max.Y}
				if first {
					box, first = rb, false
				} else {
					box = box.union(rb)
				}
			}
		}
		if !first {
			bounds[class] = box
		}
	}
	if len(bounds) == 0 {
		return roiPlan{}
	}
	return roiPlan{bounds: bounds}
}

// guardRegions reports the region names variable v is INSIDE-guarded by:
// if the (normalized) formula is satisfied at tick s under an
// instantiation binding v to o, then o is inside one of the returned
// regions at some tick in [s, s+depth(f)].  ok=false means no such
// guarantee could be established.
func guardRegions(f ftl.Formula, v string) ([]string, bool) {
	switch n := f.(type) {
	case ftl.Inside:
		vr, okObj := n.Obj.(ftl.Var)
		rn, okReg := n.Region.(ftl.Var)
		if okObj && okReg && vr.Name == v {
			return []string{rn.Name}, true
		}
		return nil, false
	case ftl.And:
		// Either conjunct alone guards the conjunction.
		if regs, ok := guardRegions(n.L, v); ok {
			return regs, true
		}
		return guardRegions(n.R, v)
	case ftl.Or:
		// A disjunction is guarded only if both arms are; the guard is
		// the union of their regions.
		ls, lok := guardRegions(n.L, v)
		if !lok {
			return nil, false
		}
		rs, rok := guardRegions(n.R, v)
		if !rok {
			return nil, false
		}
		return append(ls, rs...), true
	case ftl.Until:
		// f UNTIL g satisfied at s requires g at some reachable tick.
		return guardRegions(n.R, v)
	case ftl.Eventually:
		return guardRegions(n.F, v)
	case ftl.Always:
		// ALWAYS f requires f at s itself.
		return guardRegions(n.F, v)
	case ftl.Nexttime:
		return guardRegions(n.F, v)
	case ftl.Assign:
		if n.Var == v {
			// v is shadowed inside the body; the guard would apply to the
			// assigned value, not the FROM binding.
			return nil, false
		}
		return guardRegions(n.Body, v)
	}
	// Not, Compare, Outside, WithinSphere, BoolLit: satisfaction implies
	// nothing about v's position.
	return nil, false
}

// roiEpsilon inflates the motion envelope before the intersection test so
// an object computed exactly on a region boundary (where trajectory
// arithmetic can land a hair outside, e.g. -2.8e-14 against a boundary at
// 0) is still treated as relevant.  The evaluator's own boundary
// arithmetic rounds the other way at tick resolution; the inflation keeps
// the skip decision conservative.
const roiEpsilon = 1e-6

// motionEnvelope bounds the planar positions reachable by the update's
// old and new revisions over [from, to], inflated by roiEpsilon on every
// side.  ok=false means a revision has no computable planar position
// (non-spatial class, malformed motion); no plan may skip such an update.
func motionEnvelope(u most.Update, from, to temporal.Tick) (rect2, bool) {
	env := rect2{}
	first := true
	for _, o := range [...]*most.Object{u.Before, u.After} {
		if o == nil {
			continue
		}
		pos, err := o.Position()
		if err != nil {
			return rect2{}, false
		}
		var r rect2
		r.minX, r.maxX = attrRange(pos.X, float64(from), float64(to))
		r.minY, r.maxY = attrRange(pos.Y, float64(from), float64(to))
		if first {
			env, first = r, false
		} else {
			env = env.union(r)
		}
	}
	if first {
		return rect2{}, false
	}
	env.minX -= roiEpsilon
	env.minY -= roiEpsilon
	env.maxX += roiEpsilon
	env.maxY += roiEpsilon
	return env, true
}

// attrRange bounds one dynamic attribute over [from, to].
func attrRange(a motion.DynamicAttr, from, to float64) (float64, float64) {
	segs := a.Trajectory(from, to)
	if len(segs) == 0 {
		v := a.Value
		return v, v
	}
	lo, hi := 0.0, 0.0
	for i, s := range segs {
		_, _, vMin, vMax := s.Bounds()
		if i == 0 {
			lo, hi = vMin, vMax
			continue
		}
		if vMin < lo {
			lo = vMin
		}
		if vMax > hi {
			hi = vMax
		}
	}
	return lo, hi
}
