// Quickstart: a single car, a dynamic position, and one future query.
//
// It shows the core MOST idea: after inserting the car's motion vector
// once, the database answers position queries at any time — and future
// queries like "when will the car be inside downtown?" — without receiving
// any further updates.
package main

import (
	"fmt"
	"log"

	mostdb "github.com/mostdb/most"
)

func main() {
	db := mostdb.NewDatabase()
	vehicles, err := mostdb.NewClass("Vehicles", true,
		mostdb.AttrDef{Name: "PLATE", Kind: mostdb.Static})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.DefineClass(vehicles); err != nil {
		log.Fatal(err)
	}

	// One car at the origin, heading east at 2 units per tick.  This is the
	// only message the database ever receives about it.
	car, err := mostdb.NewObject("car-1", vehicles)
	if err != nil {
		log.Fatal(err)
	}
	car, _ = car.WithStatic("PLATE", mostdb.Str("RWW860"))
	car, err = car.WithPosition(mostdb.MovingFrom(mostdb.Point{X: 0, Y: 0}, mostdb.Vector{X: 2}, 0))
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Insert(car); err != nil {
		log.Fatal(err)
	}

	// The position is a function of time: no updates, different answers.
	for _, t := range []mostdb.Tick{0, 5, 10} {
		p, _ := car.PositionAt(t)
		fmt.Printf("t=%-3d position = (%.0f, %.0f)\n", t, p.X, p.Y)
	}

	// A future query: when is the car inside downtown (x in [30,50])?
	engine := mostdb.NewEngine(db)
	q := mostdb.MustParseQuery(`
		RETRIEVE o FROM Vehicles o
		WHERE EVENTUALLY INSIDE(o, downtown)`)
	opts := mostdb.QueryOptions{
		Horizon: 100,
		Regions: map[string]mostdb.Polygon{"downtown": mostdb.RectPolygon(30, -10, 50, 10)},
	}
	rel, err := engine.InstantaneousRelation(q, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, ans := range rel.Answers() {
		fmt.Printf("%s satisfies the query during %s\n", ans.Vals[0], ans.Interval)
	}

	// The answer interval is when EVENTUALLY INSIDE holds; the car itself
	// is inside downtown during [15,25] (x = 2t crosses [30,50]).
	inside := mostdb.MustParseQuery(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, downtown)`)
	rel, err = engine.InstantaneousRelation(inside, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, ans := range rel.Answers() {
		fmt.Printf("%s is inside downtown during %s\n", ans.Vals[0], ans.Interval)
	}
}
