package experiments

import (
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/workload"
)

// E2UpdateTraffic validates the paper's §1 motivation: tracking positions
// by explicit per-tick updates "would impose a serious performance and
// wireless-bandwidth overhead", while representing the motion vector means
// the database is updated only when the vector changes.
func E2UpdateTraffic(quick bool) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "update messages: per-tick position tracking vs motion-vector updates (§1)",
		Claim:   "motion-vector updates are orders of magnitude fewer than per-tick position updates, shrinking as vectors change less often",
		Columns: []string{"vehicles", "vector-change rate", "ticks", "position msgs", "vector msgs", "reduction"},
	}
	sizes := []int{100, 1000, 10000}
	if quick {
		sizes = []int{100, 1000}
	}
	const ticks = temporal.Tick(600)
	region := geom.Rect{Max: geom.Point{X: 10000, Y: 10000}}
	for _, n := range sizes {
		for _, rate := range []float64{0.001, 0.01, 0.05} {
			spec := workload.FleetSpec{N: n, Region: region, MaxSpeed: 3, Seed: 17}
			pos, vec := workload.UpdateTraffic(spec, rate, ticks)
			red := "inf"
			if vec > 0 {
				red = f2(float64(pos)/float64(vec)) + "x"
			}
			t.AddRow(itoa(n), f2(rate), itoa(int(ticks)), itoa(pos), itoa(vec), red)
		}
	}
	return t
}
