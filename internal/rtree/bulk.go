package rtree

import "sort"

// BulkLoad replaces the tree's contents with the given entries, packed by
// the Sort-Tile-Recursive method (Leutenegger et al.): entries are ordered
// by recursive tiling over the axes and packed into full leaves, giving
// tight, barely-overlapping nodes — the preferred way to (re)build the
// periodic dynamic-attribute index, whose §4 reconstruction every T time
// units starts from the complete set of trajectories.
func (t *Tree[T]) BulkLoad(rects []Rect, values []T) {
	if len(rects) != len(values) {
		panic("rtree: BulkLoad length mismatch")
	}
	t.size = len(rects)
	if len(rects) == 0 {
		t.root = &node[T]{leaf: true}
		return
	}
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	t.strSort(order, rects, 0)

	// Pack leaves.
	var level []*node[T]
	for start := 0; start < len(order); start += t.maxEntry {
		end := start + t.maxEntry
		if end > len(order) {
			end = len(order)
		}
		n := &node[T]{leaf: true}
		for _, idx := range order[start:end] {
			n.entries = append(n.entries, entry[T]{rect: rects[idx], value: values[idx]})
		}
		level = append(level, n)
	}
	// Pack upward until a single root remains.
	for len(level) > 1 {
		var next []*node[T]
		for start := 0; start < len(level); start += t.maxEntry {
			end := start + t.maxEntry
			if end > len(level) {
				end = len(level)
			}
			n := &node[T]{leaf: false}
			for _, child := range level[start:end] {
				n.entries = append(n.entries, entry[T]{rect: boundsOf(child, t.dims), child: child})
			}
			next = append(next, n)
		}
		level = next
	}
	t.root = level[0]
}

// strSort orders idx by recursive tiling: sort by the centre of dim, cut
// into vertical slices sized so each holds a square-ish tile of leaves,
// and recurse on the remaining dims within each slice.
func (t *Tree[T]) strSort(idx []int, rects []Rect, dim int) {
	center := func(i int) float64 { return (rects[i].Min[dim] + rects[i].Max[dim]) / 2 }
	sort.Slice(idx, func(a, b int) bool { return center(idx[a]) < center(idx[b]) })
	if dim >= t.dims-1 {
		return
	}
	leaves := (len(idx) + t.maxEntry - 1) / t.maxEntry
	// Number of slices along this axis: leaves^(1/remaining-dims).
	remaining := t.dims - dim
	slices := 1
	for slices < leaves {
		p := 1
		for r := 0; r < remaining; r++ {
			p *= slices + 1
		}
		if p > leaves {
			break
		}
		slices++
	}
	sliceSize := (len(idx) + slices - 1) / slices
	if sliceSize < t.maxEntry {
		sliceSize = t.maxEntry
	}
	for start := 0; start < len(idx); start += sliceSize {
		end := start + sliceSize
		if end > len(idx) {
			end = len(idx)
		}
		t.strSort(idx[start:end], rects, dim+1)
	}
}
