package eval

import (
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/most"
)

// BindDomains populates the context's variable domains from a query's FROM
// clause, using classOf to enumerate each class's objects.
func (c *Context) BindDomains(q *ftl.Query, idsOf func(class string) []most.ObjectID) error {
	if c.Domains == nil {
		c.Domains = map[string][]Val{}
	}
	for _, b := range q.Bindings {
		if _, dup := c.Domains[b.Var]; dup {
			return errf("variable %q bound twice", b.Var)
		}
		ids := idsOf(b.Class)
		dom := make([]Val, len(ids))
		for i, id := range ids {
			dom[i] = ObjVal(id)
		}
		c.Domains[b.Var] = dom
	}
	return nil
}

// EvalQuery evaluates a full query and returns Answer(CQ): a relation over
// the target variables whose tuples carry, per instantiation, the interval
// set during which the instantiation satisfies the WHERE formula (§3.5).
// The caller must have populated Domains (directly or via BindDomains).
func EvalQuery(q *ftl.Query, c *Context) (*Relation, error) {
	for _, tgt := range q.Targets {
		if _, ok := c.Domains[tgt]; !ok {
			return nil, errf("target variable %q has no FROM binding", tgt)
		}
	}
	sub := c.Span.Child("subformula_eval")
	rel, err := c.EvalFormula(q.Where)
	sub.End()
	if err != nil {
		return nil, err
	}
	asm := c.Span.Child("answer_assembly")
	out, err := rel.Expand(q.Targets, c.Domains)
	if out != nil {
		asm.Annotate("tuples", int64(out.Len()))
	}
	asm.End()
	return out, err
}
