package server

import (
	"net"
	"testing"
	"time"

	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/wire"
)

// The version-negotiation matrix: every (client max, server max) pairing
// must land on min(client, server), and the session must work end to end
// at that version.
func TestVersionNegotiationMatrix(t *testing.T) {
	cases := []struct {
		name                 string
		clientMax, serverMax int
		want                 int
	}{
		{"v1 client, v2 server", 1, 2, 1},
		{"v2 client, v1 server (graceful downgrade)", 2, 1, 1},
		{"v2 client, v2 server", 2, 2, 2},
		{"default client, default server", 0, 0, wire.MaxProtocolVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := startTestServer(t, 4, Config{MaxProtocol: tc.serverMax})
			opts := []client.Option{}
			if tc.clientMax > 0 {
				opts = append(opts, client.WithProtocol(tc.clientMax))
			}
			c, err := client.Dial(addr, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if got := c.Protocol(); got != tc.want {
				t.Fatalf("negotiated protocol %d, want %d", got, tc.want)
			}
			// The negotiated session must carry real traffic, not just a
			// handshake: a mutating round trip and a query.
			if _, err := c.UpdateBatch([]wire.UpdateOp{
				{Op: wire.OpSetMotion, ID: vid(0), VX: 1, VY: 1},
			}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := c.Query(`RETRIEVE o FROM Vehicles o WHERE TRUE`, 10); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// A pre-negotiation (PR 5 era) client never sends MaxVersion; the server
// must answer Version 1 and keep the whole session in JSON.
func TestVersionNegotiationLegacyClientSpeaksV1(t *testing.T) {
	_, addr := startTestServer(t, 2, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	// Hand-rolled v1 hello with no max_version field, like an old client.
	hello := wire.Frame{Op: wire.OpHello, ID: 1, Payload: []byte(`{"client_id":"legacy"}`)}
	if err := wire.WriteFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	dec := wire.NewDecoder(conn, 1<<20)
	resp, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	var hr wire.HelloResp
	if err := wire.Unmarshal(resp, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Version != 1 {
		t.Fatalf("legacy hello negotiated version %d, want 1", hr.Version)
	}
	if resp.Version != wire.ProtocolV1 {
		t.Fatalf("hello response framed at version %d, want 1", resp.Version)
	}

	// The session keeps working in plain v1 JSON.
	ping := wire.Frame{Op: wire.OpPing, ID: 2}
	if err := wire.WriteFrame(conn, ping); err != nil {
		t.Fatal(err)
	}
	if resp, err = dec.Next(); err != nil || resp.Op != wire.OpResult || resp.ID != 2 {
		t.Fatalf("v1 ping after legacy hello: frame %v/%d, err %v", resp.Op, resp.ID, err)
	}
}

// A frame carrying the wrong version mid-session is a protocol violation:
// the server counts it, answers with an error frame, and disconnects.
func TestMidSessionProtocolViolationDisconnects(t *testing.T) {
	reg := obs.New()
	_, addr := startTestServer(t, 2, Config{Reg: reg})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	hello, err := wire.Encode(wire.OpHello, 1, wire.HelloReq{MaxVersion: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	dec := wire.NewDecoder(conn, 1<<20)
	resp, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	var hr wire.HelloResp
	if err := wire.Unmarshal(resp, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Version != 2 {
		t.Fatalf("negotiated %d, want 2", hr.Version)
	}

	// Violate the negotiation: send a v1 frame on the now-v2 session.
	violation := wire.Frame{Op: wire.OpPing, ID: 9, Version: wire.ProtocolV1}
	if err := wire.WriteFrame(conn, violation); err != nil {
		t.Fatal(err)
	}
	// The server pushes a best-effort error frame, then closes the
	// connection; either read order ends in a closed socket.
	sawError := false
	for {
		f, err := dec.Next()
		if err != nil {
			break // disconnected
		}
		if f.Op == wire.OpError {
			sawError = true
		}
	}
	if !sawError {
		t.Log("connection closed without an error frame (best-effort push raced the close)")
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters["server.protocol_violations"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("protocol violation not counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Idempotent retries must survive a mid-call reconnect at both protocol
// versions: the replayed request ID answers from the dedup cache in the
// encoding of the retried connection.
func TestDedupReplayAcrossReconnectBothVersions(t *testing.T) {
	for _, proto := range []int{1, 2} {
		t.Run(map[int]string{1: "v1", 2: "v2"}[proto], func(t *testing.T) {
			_, addr := startTestServer(t, 4, Config{})
			c, err := client.Dial(addr, client.WithProtocol(proto), client.WithClientID("dedup-test"))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for i := 0; i < 3; i++ {
				if _, err := c.UpdateBatch([]wire.UpdateOp{
					{Op: wire.OpSetMotion, ID: vid(0), VX: float64(i), VY: 0},
				}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// A replayed response must arrive in the encoding of the retrying
// connection, not the connection that executed the original (PROTOCOL.md
// §5): execute at v2, reconnect the same client identity at v1, retry the
// same request ID, and demand a v1 frame carrying the original answer —
// without the update applying twice.
func TestDedupReplayTranscodesAcrossVersions(t *testing.T) {
	_, addr := startTestServer(t, 4, Config{})

	// dial performs a raw handshake at maxVersion and returns the decoder
	// pinned to the negotiated version.
	dial := func(maxVersion int) (net.Conn, *wire.Decoder) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		hello, err := wire.Encode(wire.OpHello, 1, wire.HelloReq{ClientID: "transcode-test", MaxVersion: maxVersion})
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteFrame(conn, hello); err != nil {
			t.Fatal(err)
		}
		dec := wire.NewDecoder(conn, 1<<20)
		resp, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		var hr wire.HelloResp
		if err := wire.Unmarshal(resp, &hr); err != nil {
			t.Fatal(err)
		}
		if hr.Version != maxVersion {
			t.Fatalf("negotiated %d, want %d", hr.Version, maxVersion)
		}
		dec.SetVersion(uint8(hr.Version))
		return conn, dec
	}

	roundTrip := func(conn net.Conn, dec *wire.Decoder, version uint8, id uint64) wire.UpdateBatchResp {
		t.Helper()
		req, err := wire.EncodeFrame(version, wire.OpUpdateBatch, id, &wire.UpdateBatchReq{
			Ops: []wire.UpdateOp{{Op: wire.OpSetMotion, ID: vid(0), VX: 2, VY: 2}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteFrame(conn, req); err != nil {
			t.Fatal(err)
		}
		resp, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Op != wire.OpResult || resp.ID != id {
			t.Fatalf("got frame %v/%d, want result/%d", resp.Op, resp.ID, id)
		}
		if resp.Version != version {
			t.Fatalf("response framed at version %d, want %d", resp.Version, version)
		}
		var ub wire.UpdateBatchResp
		if err := wire.Unmarshal(resp, &ub); err != nil {
			t.Fatal(err)
		}
		return ub
	}

	const reqID = 42
	conn2, dec2 := dial(2)
	orig := roundTrip(conn2, dec2, wire.ProtocolV2, reqID)
	conn2.Close()

	conn1, dec1 := dial(1)
	replay := roundTrip(conn1, dec1, wire.ProtocolV1, reqID)
	if replay != orig {
		t.Fatalf("replayed response %+v differs from original %+v", replay, orig)
	}
	// The replay must not have applied again: the database version a fresh
	// request observes is exactly one past the original's.
	fresh := roundTrip(conn1, dec1, wire.ProtocolV1, reqID+1)
	if fresh.Version != orig.Version+1 {
		t.Fatalf("db version %d after replay+1 update, want %d (replay must not re-apply)",
			fresh.Version, orig.Version+1)
	}
}
