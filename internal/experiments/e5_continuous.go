package experiments

import (
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/workload"
)

// E5ContinuousVsPerTick validates §1/§2.3's continuous-query claim on the
// motels scenario: "our query processing algorithm facilitates a single
// evaluation of the query; reevaluation has to occur only if the motion
// vector of the car changes" — against the naive semantics of re-running
// the instantaneous query at every clock tick.
func E5ContinuousVsPerTick(quick bool) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "continuous motels query: evaluate-once + on-update maintenance vs per-tick reevaluation (§2.3)",
		Claim:   "evaluations drop from one per tick to one per motion-vector update (plus one), with identical per-tick answers",
		Columns: []string{"motels", "ticks", "car updates", "evals (continuous)", "evals (per-tick)", "time (continuous)", "time (per-tick)"},
	}
	cases := []struct {
		motels  int
		ticks   temporal.Tick
		updates []temporal.Tick
	}{
		{50, 200, nil},
		{50, 200, []temporal.Tick{40, 90, 150}},
		{200, 400, []temporal.Tick{100, 200, 300}},
	}
	reps := 3
	if quick {
		cases = cases[:2]
		reps = 1
	}
	for _, c := range cases {
		run := func(continuous bool) (evals int, d string) {
			dur := timeIt(reps, func() {
				db := most.NewDatabase()
				vehicles := most.MustClass("Vehicles", true)
				if err := db.DefineClass(vehicles); err != nil {
					panic(err)
				}
				if err := workload.AddMotels(db, workload.MotelsSpec{
					N:      c.motels,
					Region: geom.Rect{Min: geom.Point{Y: -4}, Max: geom.Point{X: float64(c.ticks), Y: 4}},
					Seed:   3,
				}); err != nil {
					panic(err)
				}
				car, _ := most.NewObject("car", vehicles)
				car, _ = car.WithPosition(motion.MovingFrom(geom.Point{}, geom.Vector{X: 1}, 0))
				if err := db.Insert(car); err != nil {
					panic(err)
				}
				engine := newEngine(db)
				q := ftl.MustParse(`
					RETRIEVE m FROM Motels m, Vehicles c
					WHERE DIST(m, c) <= 5 AND m.AVAILABLE = TRUE`)
				opts := query.Options{Horizon: c.ticks + 10}

				upd := append([]temporal.Tick{}, c.updates...)
				if continuous {
					cq, err := engine.Continuous(q, opts)
					if err != nil {
						panic(err)
					}
					for tick := temporal.Tick(0); tick < c.ticks; tick = db.Tick() {
						for len(upd) > 0 && upd[0] == tick {
							if err := db.SetMotion("car", geom.Vector{X: 1, Y: float64(tick%3) - 1}); err != nil {
								panic(err)
							}
							upd = upd[1:]
						}
						if _, err := cq.Current(tick); err != nil {
							panic(err)
						}
					}
				} else {
					for tick := temporal.Tick(0); tick < c.ticks; tick = db.Tick() {
						for len(upd) > 0 && upd[0] == tick {
							if err := db.SetMotion("car", geom.Vector{X: 1, Y: float64(tick%3) - 1}); err != nil {
								panic(err)
							}
							upd = upd[1:]
						}
						if _, err := engine.Instantaneous(q, opts); err != nil {
							panic(err)
						}
					}
				}
				evals = engine.Evaluations()
			})
			return evals, ns(dur)
		}
		cEvals, cTime := run(true)
		nEvals, nTime := run(false)
		t.AddRow(itoa(c.motels), itoa(int(c.ticks)), itoa(len(c.updates)),
			itoa(cEvals), itoa(nEvals), cTime, nTime)
	}
	t.Notes = append(t.Notes, "continuous evaluations = 1 + number of relevant updates; per-tick evaluations = number of ticks")
	return t
}
