package eval

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file fans the evaluator's per-instantiation loops out over a bounded
// worker pool.  The appendix algorithm's hot loop — "for each possible
// relevant instantiation of values to the free variables in g" — is
// embarrassingly parallel: every instantiation is solved independently
// against read-only context state (immutable object revisions, domains,
// regions, parameters), and only the merge into the relation orders them.
// Workers therefore solve blocks of the domain product concurrently, and a
// single merge pass consumes the results in ascending instantiation order,
// so the resulting relation is byte-for-byte identical to the sequential
// evaluation.

// workers resolves the Parallelism knob to a concrete pool size.
func (c *Context) workers() int {
	switch {
	case c.Parallelism == 0 || c.Parallelism == 1:
		return 1
	case c.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return c.Parallelism
	}
}

// parallelBlock is how many instantiations one merge round covers.  Workers
// split a block between them; results are buffered per block, bounding
// memory to one block regardless of domain-product size.
const parallelBlock = 8192

// solveInstantiations enumerates the domain product of cols.  For every
// instantiation it calls solve (concurrently when the context asks for
// parallelism) and then merge, sequentially, in ascending instantiation
// order — the same order the sequential recursion visits, so callers
// building relations get deterministic results.
//
// solve runs on pool goroutines: it must treat the context as read-only
// (every solver in this package does) and must not retain en or vals, which
// are reused.  merge runs on the calling goroutine only.
func solveInstantiations[T any](c *Context, cols []string, solve func(en env, vals []Val) (T, error), merge func(vals []Val, res T) error) error {
	sizes := make([]int, len(cols))
	total := 1
	for i, col := range cols {
		sizes[i] = len(c.Domains[col])
		total *= sizes[i]
	}
	if total == 0 {
		return nil
	}
	c.Obs.Counter("eval.instantiations").Add(int64(total))

	nw := c.workers()
	if nw > total {
		nw = total
	}
	if nw <= 1 {
		vals := make([]Val, len(cols))
		en := env{}
		for idx := 0; idx < total; idx++ {
			instantiate(c, cols, sizes, idx, en, vals)
			res, err := solve(en, vals)
			if err != nil {
				return err
			}
			if err := merge(vals, res); err != nil {
				return err
			}
		}
		return nil
	}

	type slot struct {
		res T
		ok  bool
	}
	buf := make([]slot, parallelBlock)
	var firstErr error
	var errMu sync.Mutex
	var failed atomic.Bool
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}

	mergeVals := make([]Val, len(cols))
	mergeEnv := env{}
	for blockStart := 0; blockStart < total; blockStart += parallelBlock {
		blockLen := total - blockStart
		if blockLen > parallelBlock {
			blockLen = parallelBlock
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				vals := make([]Val, len(cols))
				en := env{}
				for {
					i := int(next.Add(1)) - 1
					if i >= blockLen || failed.Load() {
						return
					}
					instantiate(c, cols, sizes, blockStart+i, en, vals)
					res, err := solve(en, vals)
					if err != nil {
						fail(err)
						return
					}
					buf[i] = slot{res: res, ok: true}
				}
			}()
		}
		wg.Wait()
		if failed.Load() {
			return firstErr
		}
		for i := 0; i < blockLen; i++ {
			instantiate(c, cols, sizes, blockStart+i, mergeEnv, mergeVals)
			if err := merge(mergeVals, buf[i].res); err != nil {
				return err
			}
			buf[i] = slot{}
		}
	}
	return nil
}

// instantiate decodes a mixed-radix index into the instantiation it names,
// writing the values into vals and en (both len(cols)).
func instantiate(c *Context, cols []string, sizes []int, idx int, en env, vals []Val) {
	for i := len(cols) - 1; i >= 0; i-- {
		d := idx % sizes[i]
		idx /= sizes[i]
		v := c.Domains[cols[i]][d]
		vals[i] = v
		en[cols[i]] = v
	}
}
