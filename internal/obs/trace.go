package obs

import (
	"sync"
	"time"
)

// This file is the tracer: per-query span trees with monotonic timings.
// A root span is opened with Registry.StartSpan, stages hang off it with
// Span.Child, and Span.End closes a span (filing root spans back into the
// registry, which retains the latest completed trace per root name).  Every
// method is nil-safe, so an uninstrumented path pays one branch per hook
// and never reads the clock.
//
// Durations come from time.Time's monotonic reading, so spans are immune to
// wall-clock steps.  Spans may be created from concurrent goroutines (a
// parent's child list is mutex-guarded); a single span's Child/Annotate/End
// calls are expected from one goroutine at a time, which every caller in
// this module satisfies (each concurrent query evaluation owns its own span
// tree).

// Span is one timed node of a trace tree.
type Span struct {
	name  string
	start time.Time
	reg   *Registry // non-nil on root spans only; End files the trace

	mu       sync.Mutex
	dur      time.Duration
	done     bool
	attrs    map[string]int64
	children []*Span
}

// StartSpan opens a root span.  Returns nil — a valid, inert span — on a
// nil registry, so callers thread the result through unconditionally.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{name: name, start: time.Now(), reg: r}
}

// Child opens a sub-span.  Nil-safe: a nil parent returns a nil child.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Annotate attaches a named integer to the span (candidate counts, rows,
// message tallies).  No-op on a nil receiver.
func (s *Span) Annotate(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]int64{}
	}
	s.attrs[key] += v
	s.mu.Unlock()
}

// End closes the span, recording its monotonic duration.  Ending a root
// span files the completed trace into its registry.  Idempotent; no-op on
// a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.keepTrace(s)
	}
}

// Duration returns the span's closed duration (0 while open or nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// keepTrace retains the completed root span as the latest trace under its
// name.  Keeping one trace per name bounds memory no matter how many
// queries run, while guaranteeing a snapshot shows every query type that
// ever executed.
func (r *Registry) keepTrace(root *Span) {
	r.traceMu.Lock()
	if r.traces == nil {
		r.traces = map[string]*Span{}
	}
	r.traces[root.name] = root
	r.traceMu.Unlock()
}

// SpanSnapshot is the serialized form of a span tree.
type SpanSnapshot struct {
	Name       string           `json:"name"`
	OffsetNs   int64            `json:"offset_ns"` // start offset from the parent span's start
	DurationNs int64            `json:"duration_ns"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []SpanSnapshot   `json:"children,omitempty"`
}

// Snapshot serializes the span tree rooted at s.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	return s.snapshotFrom(s.start)
}

func (s *Span) snapshotFrom(parentStart time.Time) SpanSnapshot {
	s.mu.Lock()
	out := SpanSnapshot{
		Name:       s.name,
		OffsetNs:   s.start.Sub(parentStart).Nanoseconds(),
		DurationNs: s.dur.Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]int64, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	children := append([]*Span{}, s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.snapshotFrom(s.start))
	}
	return out
}

// Find returns the first descendant span (depth-first, including s itself)
// with the given name, or the zero snapshot.  Test helper for asserting
// stage structure.
func (ss SpanSnapshot) Find(name string) (SpanSnapshot, bool) {
	if ss.Name == name {
		return ss, true
	}
	for _, c := range ss.Children {
		if got, ok := c.Find(name); ok {
			return got, true
		}
	}
	return SpanSnapshot{}, false
}
