package motion

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/temporal"
)

func TestDynamicAttrAt(t *testing.T) {
	// Paper §2.3's example object: X.POSITION changes according to 5t.
	a := LinearFrom(0, 0, 5)
	for tick, want := range map[temporal.Tick]float64{0: 0, 1: 5, 10: 50} {
		if got := a.At(tick); got != want {
			t.Errorf("At(%d) = %v, want %v", tick, got, want)
		}
	}
	if got := a.SpeedAt(7); got != 5 {
		t.Errorf("SpeedAt = %v, want 5", got)
	}
	s := Static(42)
	if s.At(0) != 42 || s.At(1000) != 42 {
		t.Error("static attribute must not drift")
	}
}

func TestDynamicAttrUpdate(t *testing.T) {
	// Paper §2.3: function 5t, updated to 7t after one minute, then 10t.
	a := LinearFrom(0, 0, 5)
	a = a.Updated(1, Linear(7))
	if a.Value != 5 || a.UpdateTime != 1 {
		t.Fatalf("after first update: %+v", a)
	}
	a = a.Updated(2, Linear(10))
	if a.Value != 12 || a.UpdateTime != 2 {
		t.Fatalf("after second update: %+v", a)
	}
	if got := a.At(3); got != 22 {
		t.Errorf("At(3) = %v, want 22", got)
	}
	if got := a.SpeedAt(2); got != 10 {
		t.Errorf("speed after updates = %v, want 10", got)
	}
	b := a.SetAt(5, 100, Linear(-1))
	if b.At(5) != 100 || b.At(7) != 98 {
		t.Errorf("SetAt: At(5)=%v At(7)=%v", b.At(5), b.At(7))
	}
}

func TestTrajectory(t *testing.T) {
	a := DynamicAttr{Value: 10, UpdateTime: 5, Function: MustFunc(Piece{0, 2, 0}, Piece{10, -1, 0})}
	segs := a.Trajectory(5, 25)
	if len(segs) != 2 {
		t.Fatalf("segments = %+v", segs)
	}
	if segs[0].T0 != 5 || segs[0].T1 != 15 || segs[0].V0 != 10 || segs[0].Slope != 2 {
		t.Errorf("seg0 = %+v", segs[0])
	}
	if segs[1].T0 != 15 || segs[1].T1 != 25 || segs[1].V0 != 30 || segs[1].Slope != -1 {
		t.Errorf("seg1 = %+v", segs[1])
	}
	// Bounds of a decreasing segment order the values.
	tMin, tMax, vMin, vMax := segs[1].Bounds()
	if tMin != 15 || tMax != 25 || vMin != 20 || vMax != 30 {
		t.Errorf("Bounds = %v %v %v %v", tMin, tMax, vMin, vMax)
	}
	// Clipped window.
	segs = a.Trajectory(7, 9)
	if len(segs) != 1 || segs[0].V0 != 14 {
		t.Errorf("clipped = %+v", segs)
	}
	if got := a.Trajectory(9, 7); got != nil {
		t.Errorf("inverted window = %+v", got)
	}
}

func TestRangeTimes(t *testing.T) {
	// A(t) = 5t from time 0: in [4,5] during t in [0.8, 1].
	a := LinearFrom(0, 0, 5)
	got := a.RangeTimes(4, 5, 0, 100)
	ivs := got.Intervals()
	if len(ivs) != 1 || math.Abs(ivs[0].Lo-0.8) > 1e-9 || math.Abs(ivs[0].Hi-1) > 1e-9 {
		t.Fatalf("RangeTimes = %v", ivs)
	}
	// Piecewise up-down crosses the band twice.
	b := DynamicAttr{Value: 0, UpdateTime: 0, Function: MustFunc(Piece{0, 1, 0}, Piece{20, -1, 0})}
	got = b.RangeTimes(5, 10, 0, 40)
	if len(got.Intervals()) != 2 {
		t.Fatalf("up-down RangeTimes = %v", got.Intervals())
	}
	// Constant inside the band holds everywhere.
	if got := Static(7).RangeTimes(5, 10, 0, 9); got.IsEmpty() {
		t.Fatal("constant in band should hold")
	}
	if got := Static(70).RangeTimes(5, 10, 0, 9); !got.IsEmpty() {
		t.Fatal("constant out of band should not hold")
	}
}

func TestCompareTicksStrictness(t *testing.T) {
	// A(t) = 5t: A(2) == 10 exactly.
	a := LinearFrom(0, 0, 5)
	w := temporal.Interval{Start: 0, End: 10}

	le, err := a.CompareTicks("<=", 10, w)
	if err != nil {
		t.Fatal(err)
	}
	if !le.Equal(temporal.NewSet(temporal.Interval{Start: 0, End: 2})) {
		t.Errorf("<= 10 ticks = %s", le)
	}
	lt, err := a.CompareTicks("<", 10, w)
	if err != nil {
		t.Fatal(err)
	}
	if !lt.Equal(temporal.NewSet(temporal.Interval{Start: 0, End: 1})) {
		t.Errorf("< 10 ticks = %s", lt)
	}
	eq, err := a.CompareTicks("=", 10, w)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Equal(temporal.SinglePoint(2)) {
		t.Errorf("= 10 ticks = %s", eq)
	}
	ne, err := a.CompareTicks("!=", 10, w)
	if err != nil {
		t.Fatal(err)
	}
	if ne.Contains(2) || !ne.Contains(1) || !ne.Contains(3) {
		t.Errorf("!= 10 ticks = %s", ne)
	}
	if _, err := a.CompareTicks("~", 10, w); err == nil {
		t.Error("unknown operator should fail")
	}
}

func TestCompareTicksBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	w := temporal.Interval{Start: 0, End: 50}
	ops := []string{"<", "<=", ">", ">=", "=", "!="}
	for i := 0; i < 200; i++ {
		a := DynamicAttr{
			Value:      float64(r.Intn(41) - 20),
			UpdateTime: temporal.Tick(r.Intn(10)),
			Function:   randomFunc(r),
		}
		c := float64(r.Intn(81) - 40)
		for _, op := range ops {
			got, err := a.CompareTicks(op, c, w)
			if err != nil {
				t.Fatal(err)
			}
			for tick := w.Start; tick <= w.End; tick++ {
				v := a.At(tick)
				var want bool
				switch op {
				case "<":
					want = v < c
				case "<=":
					want = v <= c
				case ">":
					want = v > c
				case ">=":
					want = v >= c
				case "=":
					want = v == c
				case "!=":
					want = v != c
				}
				if got.Contains(tick) != want {
					if math.Abs(v-c) < 1e-6 {
						continue // float noise at the boundary
					}
					t.Fatalf("case %d op %s tick %d: got %v want %v (v=%v c=%v attr=%+v)",
						i, op, tick, got.Contains(tick), want, v, c, a)
				}
			}
		}
	}
}

func TestPosition(t *testing.T) {
	p := MovingFrom(geom.Point{X: 0, Y: 0}, geom.Vector{X: 1, Y: 2}, 0)
	if got := p.At(10); got != (geom.Point{X: 10, Y: 20}) {
		t.Errorf("At(10) = %v", got)
	}
	if got := p.VelocityAt(5); got != (geom.Vector{X: 1, Y: 2}) {
		t.Errorf("VelocityAt = %v", got)
	}
	// Retarget at t=10: continuity preserved, new vector applies after.
	p2 := p.Retarget(10, geom.Vector{X: -1, Y: 0})
	if got := p2.At(10); got != (geom.Point{X: 10, Y: 20}) {
		t.Errorf("position must be continuous across retarget, got %v", got)
	}
	if got := p2.At(12); got != (geom.Point{X: 8, Y: 20}) {
		t.Errorf("At(12) after retarget = %v", got)
	}
	p3 := p.Teleport(10, geom.Point{X: 100, Y: 100}, geom.Vector{})
	if got := p3.At(20); got != (geom.Point{X: 100, Y: 100}) {
		t.Errorf("teleport = %v", got)
	}
}

func TestPositionStaticHelper(t *testing.T) {
	p := PositionAt(geom.Point{X: 3, Y: 4, Z: 5}, 7)
	if got := p.At(100); got != (geom.Point{X: 3, Y: 4, Z: 5}) {
		t.Errorf("static position drifted: %v", got)
	}
	if !p.VelocityAt(8).IsZero() {
		t.Error("static position should have zero velocity")
	}
}

func TestMovingPointsOver(t *testing.T) {
	// X has a breakpoint at absolute time 10 (speed 1 then 3).
	p := Position{
		X: DynamicAttr{Value: 0, UpdateTime: 0, Function: MustFunc(Piece{0, 1, 0}, Piece{10, 3, 0})},
		Y: LinearFrom(5, 0, 0),
	}
	spans := p.MovingPointsOver(0, 20)
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].From != 0 || spans[0].To != 10 || spans[0].MP.V.X != 1 {
		t.Errorf("span0 = %+v", spans[0])
	}
	if spans[1].From != 10 || spans[1].To != 20 || spans[1].MP.V.X != 3 {
		t.Errorf("span1 = %+v", spans[1])
	}
	// Spans agree with the position itself.
	for _, s := range spans {
		for tt := s.From; tt <= s.To; tt += 2.5 {
			if d := geom.Dist(s.MP.At(tt), p.AtReal(tt)); d > 1e-9 {
				t.Fatalf("span disagrees with position at %v by %v", tt, d)
			}
		}
	}
}
