package chaos

// The chaos suite (run via `make chaos`, always under -race): each test is
// one scripted scenario asserting that crashes, partitions and restarts
// are invisible in committed state and notification streams.  Scenarios
// are seeded; the loop runs each one at several seeds to vary the
// workload and jitter schedules.

import (
	"fmt"
	"testing"
	"time"
)

func seeds(t *testing.T) []int64 {
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 7}
}

func runScenario(t *testing.T, name string, fn func(dir string, seed int64) (Result, error)) {
	for _, seed := range seeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res, err := fn(t.TempDir(), seed)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i, d := range res.Recoveries {
				if d <= 0 || d > time.Minute {
					t.Errorf("%s: implausible recovery time %s (restart %d)", name, d, i)
				}
			}
			t.Logf("%s seed=%d: %d recoveries, %d failover probes, %d reconnects, %d resume rows",
				name, seed, len(res.Recoveries), len(res.Failovers), res.Reconnects, res.ResumeRows)
		})
	}
}

func TestChaosKillRestart(t *testing.T) {
	runScenario(t, "kill-restart", KillRestart)
}

func TestChaosPartition(t *testing.T) {
	runScenario(t, "partition", Partition)
}

func TestChaosChurn(t *testing.T) {
	runScenario(t, "churn", Churn)
}
