package obs

import (
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	r := New()
	root := r.StartSpan("query.instantaneous")
	parse := root.Child("parse")
	time.Sleep(time.Millisecond)
	parse.End()
	eval := root.Child("subformula_eval")
	probe := eval.Child("index_probe")
	probe.Annotate("candidates", 12)
	probe.Annotate("candidates", 3)
	probe.End()
	eval.End()
	root.End()

	if root.Duration() <= 0 {
		t.Fatal("closed root span has no duration")
	}
	ss := root.Snapshot()
	if ss.Name != "query.instantaneous" || len(ss.Children) != 2 {
		t.Fatalf("bad root snapshot: %+v", ss)
	}
	p, ok := ss.Find("parse")
	if !ok || p.DurationNs < int64(time.Millisecond)/2 {
		t.Fatalf("parse span missing or too short: %+v", p)
	}
	ip, ok := ss.Find("index_probe")
	if !ok {
		t.Fatal("index_probe span missing")
	}
	if ip.Attrs["candidates"] != 15 {
		t.Fatalf("Annotate should accumulate: attrs = %+v", ip.Attrs)
	}
	if _, ok := ss.Find("no-such-span"); ok {
		t.Fatal("Find invented a span")
	}
	// Children start at or after the root span starts.
	for _, c := range ss.Children {
		if c.OffsetNs < 0 {
			t.Fatalf("negative child offset: %+v", c)
		}
	}
}

func TestEndIdempotent(t *testing.T) {
	r := New()
	sp := r.StartSpan("q")
	sp.End()
	d := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if sp.Duration() != d {
		t.Fatal("second End changed the recorded duration")
	}
}

func TestKeepTraceLatestPerName(t *testing.T) {
	r := New()
	first := r.StartSpan("query.continuous")
	first.Annotate("gen", 1)
	first.End()
	second := r.StartSpan("query.continuous")
	second.Annotate("gen", 2)
	second.End()
	other := r.StartSpan("query.persistent")
	other.End()

	snap := r.Snapshot()
	if len(snap.Traces) != 2 {
		t.Fatalf("want 2 retained traces, got %d", len(snap.Traces))
	}
	if snap.Traces["query.continuous"].Attrs["gen"] != 2 {
		t.Fatalf("retained trace is not the latest: %+v", snap.Traces["query.continuous"])
	}
	if _, ok := snap.Traces["query.persistent"]; !ok {
		t.Fatal("persistent trace was dropped")
	}
}

func TestOpenSpanNotRetained(t *testing.T) {
	r := New()
	sp := r.StartSpan("q")
	if len(r.Snapshot().Traces) != 0 {
		t.Fatal("an open span must not appear in the snapshot")
	}
	sp.End()
	if len(r.Snapshot().Traces) != 1 {
		t.Fatal("ended root span should be retained")
	}
}
