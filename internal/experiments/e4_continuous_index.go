package experiments

import (
	"github.com/mostdb/most/internal/temporal"
)

// E4ContinuousIndex measures the §4 continuous range query: one index
// probe over the rectangle [lo,hi] x [now,T] yields Answer(CQ) — each
// object with the time intervals during which it is in range — versus
// naively re-running the instantaneous query at every clock tick.
func E4ContinuousIndex(quick bool) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "continuous range query: one index probe vs per-tick instantaneous probes (§4)",
		Claim:   "the continuous answer with per-object intervals is constructed from a single probe; per-tick probing costs a probe per tick",
		Columns: []string{"objects", "horizon", "answer tuples", "single probe", "per-tick probes", "ratio"},
	}
	sizes := []int{1000, 10000}
	horizons := []temporal.Tick{200, 1000}
	reps := 20
	if quick {
		sizes = []int{1000}
		reps = 5
	}
	for _, n := range sizes {
		for _, h := range horizons {
			ix, _ := indexedFleet(n, h, 0.1, 9)
			lo, hi := 100.0, 102.0
			tuples := len(ix.ContinuousQuery(lo, hi, 0))
			single := timeIt(reps, func() { ix.ContinuousQuery(lo, hi, 0) })
			perTick := timeIt(reps, func() {
				for at := temporal.Tick(0); at < h; at++ {
					ix.InstantQuery(lo, hi, at)
				}
			})
			t.AddRow(itoa(n), itoa(int(h)), itoa(tuples), ns(single), ns(perTick),
				f2(float64(perTick)/float64(single))+"x")
		}
	}
	return t
}
