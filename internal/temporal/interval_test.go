package temporal

import "testing"

func TestNewInterval(t *testing.T) {
	tests := []struct {
		name       string
		start, end Tick
		ok         bool
	}{
		{"point", 5, 5, true},
		{"normal", 1, 9, true},
		{"inverted", 9, 1, false},
		{"negative", -4, -2, true},
		{"full range", MinTick, MaxTick, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			iv, ok := NewInterval(tt.start, tt.end)
			if ok != tt.ok {
				t.Fatalf("NewInterval(%d,%d) ok = %v, want %v", tt.start, tt.end, ok, tt.ok)
			}
			if ok && (iv.Start != tt.start || iv.End != tt.end) {
				t.Fatalf("NewInterval(%d,%d) = %v", tt.start, tt.end, iv)
			}
		})
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Start: 3, End: 7}
	for tick, want := range map[Tick]bool{2: false, 3: true, 5: true, 7: true, 8: false} {
		if got := iv.Contains(tick); got != want {
			t.Errorf("Contains(%d) = %v, want %v", tick, got, want)
		}
	}
}

func TestIntervalIntersect(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Interval
		want   Interval
		wantOK bool
	}{
		{"overlap", Interval{1, 5}, Interval{3, 9}, Interval{3, 5}, true},
		{"touch", Interval{1, 5}, Interval{5, 9}, Interval{5, 5}, true},
		{"disjoint", Interval{1, 4}, Interval{6, 9}, Interval{}, false},
		{"contained", Interval{1, 9}, Interval{3, 4}, Interval{3, 4}, true},
		{"consecutive", Interval{1, 4}, Interval{5, 9}, Interval{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := tt.a.Intersect(tt.b)
			if ok != tt.wantOK || (ok && got != tt.want) {
				t.Fatalf("Intersect(%v,%v) = %v,%v; want %v,%v", tt.a, tt.b, got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

func TestIntervalCompatible(t *testing.T) {
	// Appendix: [l1 u1] compatible with [m1 n1] iff m1 <= u1+1 and n1 >= u1.
	tests := []struct {
		name string
		a, b Interval
		want bool
	}{
		{"overlap extending", Interval{0, 5}, Interval{4, 9}, true},
		{"consecutive", Interval{0, 5}, Interval{6, 9}, true},
		{"gap", Interval{0, 5}, Interval{7, 9}, false},
		{"contained ends early", Interval{0, 5}, Interval{2, 3}, false},
		{"same end", Interval{0, 5}, Interval{2, 5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compatible(tt.b); got != tt.want {
				t.Fatalf("Compatible(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestIntervalShiftSaturates(t *testing.T) {
	iv := Interval{Start: MaxTick - 1, End: MaxTick}
	got := iv.Shift(10)
	if got.End != MaxTick || got.Start > got.End {
		t.Fatalf("Shift past MaxTick = %v, want saturated valid interval", got)
	}
	iv = Interval{Start: MinTick, End: MinTick + 1}
	got = iv.Shift(-10)
	if got.Start != MinTick || !got.Valid() {
		t.Fatalf("Shift past MinTick = %v, want saturated valid interval", got)
	}
}

func TestFloorCeilTick(t *testing.T) {
	tests := []struct {
		x           float64
		floor, ceil Tick
	}{
		{2.0, 2, 2},
		{2.3, 2, 3},
		{-2.3, -3, -2},
		{1e30, MaxTick, MaxTick},
		{-1e30, MinTick, MinTick},
	}
	for _, tt := range tests {
		if got := FloorTick(tt.x); got != tt.floor {
			t.Errorf("FloorTick(%v) = %d, want %d", tt.x, got, tt.floor)
		}
		if got := CeilTick(tt.x); got != tt.ceil {
			t.Errorf("CeilTick(%v) = %d, want %d", tt.x, got, tt.ceil)
		}
	}
}

func TestIntervalLenAndHull(t *testing.T) {
	if got := (Interval{3, 7}).Len(); got != 5 {
		t.Errorf("Len = %d, want 5", got)
	}
	if got := (Interval{7, 3}).Len(); got != 0 {
		t.Errorf("invalid Len = %d, want 0", got)
	}
	if got := (Interval{1, 3}).Hull(Interval{7, 9}); got != (Interval{1, 9}) {
		t.Errorf("Hull = %v, want [1 9]", got)
	}
}
