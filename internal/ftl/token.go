// Package ftl implements the Future Temporal Logic query language of the
// paper (§3): its lexer, parser and abstract syntax.  Queries have the form
//
//	RETRIEVE <target-list> [FROM <class> <var>, ...] WHERE <condition>
//
// where the condition is an FTL formula built from atomic predicates
// (spatial methods and comparisons), the connectives AND, OR, NOT, the
// assignment quantifier [x <- term], and the temporal operators UNTIL,
// NEXTTIME, EVENTUALLY and ALWAYS with their bounded forms (§3.4):
// EVENTUALLY WITHIN c, EVENTUALLY AFTER c, ALWAYS FOR c, and
// f UNTIL WITHIN c g.
//
// Evaluation lives in the ftl/eval subpackage.
package ftl

import "fmt"

// TokKind enumerates the lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokKeyword
	TokSymbol
)

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind TokKind
	Text string  // identifier/keyword (upper-cased for keywords), symbol, or raw string
	Num  float64 // valid for TokNumber
	Pos  int     // byte offset in the input
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokNumber:
		return fmt.Sprintf("number %g", t.Num)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords of the language.  Identifiers are matched case-insensitively
// against this set.
var keywords = map[string]bool{
	"RETRIEVE": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "IMPLIES": true,
	"UNTIL": true, "NEXTTIME": true, "EVENTUALLY": true, "ALWAYS": true,
	"WITHIN": true, "AFTER": true, "FOR": true,
	"INSIDE": true, "OUTSIDE": true, "DIST": true, "WITHIN_SPHERE": true,
	"TRUE": true, "FALSE": true, "TIME": true,
	"SPEED": true, "VALUE": true, "UPDATETIME": true,
	"ABS": true, "MIN": true, "MAX": true,
}

// Error is a syntax error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("ftl: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

func errAt(tok Token, format string, args ...any) error {
	return &Error{Line: tok.Line, Col: tok.Col, Msg: fmt.Sprintf(format, args...)}
}
