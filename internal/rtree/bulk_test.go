package rtree

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBulkLoadMatchesIncremental(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		for _, n := range []int{0, 1, 5, 16, 17, 100, 1000} {
			r := rand.New(rand.NewSource(int64(dims*1000 + n)))
			rects := make([]Rect, n)
			vals := make([]int, n)
			inc := New[int](dims, 16)
			for i := 0; i < n; i++ {
				rects[i] = randRect(r, dims, 200, 10)
				vals[i] = i
				inc.Insert(rects[i], i)
			}
			bulk := New[int](dims, 16)
			bulk.BulkLoad(rects, vals)
			if bulk.Len() != n {
				t.Fatalf("dims=%d n=%d: bulk Len = %d", dims, n, bulk.Len())
			}
			for q := 0; q < 30; q++ {
				query := randRect(r, dims, 200, 40)
				a := inc.SearchAll(query)
				b := bulk.SearchAll(query)
				sort.Ints(a)
				sort.Ints(b)
				if len(a) != len(b) {
					t.Fatalf("dims=%d n=%d query %d: incremental %d hits, bulk %d", dims, n, q, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("dims=%d n=%d query %d: %v vs %v", dims, n, q, a, b)
					}
				}
			}
		}
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	n := 300
	rects := make([]Rect, n)
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		rects[i] = randRect(r, 2, 100, 5)
		vals[i] = i
	}
	tr := New[int](2, 16)
	tr.BulkLoad(rects, vals)
	// Deletes and inserts keep working on a bulk-loaded tree.
	for i := 0; i < n; i += 3 {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := n; i < n+50; i++ {
		tr.Insert(randRect(r, 2, 100, 5), i)
	}
	if tr.Len() != n-100+50 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.SearchAll(Rect2(-1e9, -1e9, 1e9, 1e9))
	if len(got) != tr.Len() {
		t.Fatalf("full search = %d, Len = %d", len(got), tr.Len())
	}
}

func TestBulkLoadMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	New[int](2, 16).BulkLoad(make([]Rect, 2), make([]int, 3))
}

func TestBulkLoadReplacesContents(t *testing.T) {
	tr := New[int](2, 16)
	tr.Insert(Rect2(0, 0, 1, 1), 99)
	tr.BulkLoad([]Rect{Rect2(5, 5, 6, 6)}, []int{1})
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.SearchAll(Rect2(0, 0, 1, 1)); len(got) != 0 {
		t.Fatalf("old contents survived: %v", got)
	}
	// Empty bulk load leaves a usable empty tree.
	tr.BulkLoad(nil, nil)
	if tr.Len() != 0 {
		t.Fatal("empty bulk load should clear")
	}
	tr.Insert(Rect2(0, 0, 1, 1), 1)
	if got := tr.SearchAll(Rect2(0, 0, 2, 2)); len(got) != 1 {
		t.Fatalf("insert after empty bulk load: %v", got)
	}
}

func TestDeleteNonexistentAndRootCollapse(t *testing.T) {
	tr := New[int](2, 8)
	if tr.Delete(Rect2(0, 0, 1, 1), 999) {
		t.Fatal("delete from empty tree should fail")
	}
	// Fill enough to gain height, then delete everything: root collapses.
	r := rand.New(rand.NewSource(5))
	boxes := make([]Rect, 200)
	for i := range boxes {
		boxes[i] = randRect(r, 2, 50, 4)
		tr.Insert(boxes[i], i)
	}
	if tr.Height() < 2 {
		t.Fatal("tree should have grown")
	}
	for i, b := range boxes {
		if !tr.Delete(b, i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("after emptying: len=%d height=%d", tr.Len(), tr.Height())
	}
	// Tree still usable.
	tr.Insert(Rect2(0, 0, 1, 1), 1)
	if got := tr.SearchAll(Rect2(0, 0, 2, 2)); len(got) != 1 {
		t.Fatalf("reuse after collapse: %v", got)
	}
}
