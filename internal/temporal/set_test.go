package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSet draws a small random normalized set within [-40, 60].
func randomSet(r *rand.Rand) Set {
	n := r.Intn(6)
	ivs := make([]Interval, 0, n)
	for i := 0; i < n; i++ {
		s := Tick(r.Intn(100) - 40)
		e := s + Tick(r.Intn(12))
		ivs = append(ivs, Interval{Start: s, End: e})
	}
	return NewSet(ivs...)
}

// ticksOf materializes a set over the probe window used by brute-force checks.
func ticksOf(s Set, lo, hi Tick) map[Tick]bool {
	out := map[Tick]bool{}
	for t := lo; t <= hi; t++ {
		if s.Contains(t) {
			out[t] = true
		}
	}
	return out
}

func TestNewSetNormalizes(t *testing.T) {
	tests := []struct {
		name string
		in   []Interval
		want string
	}{
		{"empty", nil, "{}"},
		{"sorted merge overlap", []Interval{{1, 4}, {3, 8}}, "[1 8]"},
		{"merge consecutive", []Interval{{1, 4}, {5, 8}}, "[1 8]"},
		{"keep gap", []Interval{{1, 4}, {6, 8}}, "[1 4] [6 8]"},
		{"unsorted", []Interval{{6, 8}, {1, 4}}, "[1 4] [6 8]"},
		{"drop invalid", []Interval{{5, 3}, {1, 2}}, "[1 2]"},
		{"nested", []Interval{{1, 10}, {3, 4}}, "[1 10]"},
		{"duplicate", []Interval{{1, 2}, {1, 2}}, "[1 2]"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewSet(tt.in...)
			if got.String() != tt.want {
				t.Fatalf("NewSet(%v) = %s, want %s", tt.in, got, tt.want)
			}
			if !got.Normalized() {
				t.Fatalf("NewSet(%v) not normalized: %s", tt.in, got)
			}
		})
	}
}

func TestSetContainsBinarySearch(t *testing.T) {
	s := NewSet(Interval{1, 3}, Interval{7, 9}, Interval{20, 20})
	for tick, want := range map[Tick]bool{0: false, 1: true, 3: true, 4: false, 8: true, 10: false, 20: true, 21: false} {
		if got := s.Contains(tick); got != want {
			t.Errorf("Contains(%d) = %v, want %v", tick, got, want)
		}
	}
}

func TestSetOpsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const lo, hi = -50, 80
	for i := 0; i < 300; i++ {
		a, b := randomSet(r), randomSet(r)
		ta, tb := ticksOf(a, lo, hi), ticksOf(b, lo, hi)
		checks := []struct {
			name string
			got  Set
			want func(Tick) bool
		}{
			{"union", a.Union(b), func(t Tick) bool { return ta[t] || tb[t] }},
			{"intersect", a.Intersect(b), func(t Tick) bool { return ta[t] && tb[t] }},
			{"subtract", a.Subtract(b), func(t Tick) bool { return ta[t] && !tb[t] }},
			{"complement", a.ComplementWithin(Interval{lo, hi}), func(t Tick) bool { return !ta[t] }},
		}
		for _, c := range checks {
			if !c.got.Normalized() {
				t.Fatalf("case %d %s: result not normalized: %s", i, c.name, c.got)
			}
			for tick := Tick(lo); tick <= hi; tick++ {
				if got, want := c.got.Contains(tick), c.want(tick); got != want {
					t.Fatalf("case %d %s: a=%s b=%s tick=%d got %v want %v (result %s)",
						i, c.name, a, b, tick, got, want, c.got)
				}
			}
		}
	}
}

func TestSetShift(t *testing.T) {
	s := NewSet(Interval{1, 3}, Interval{7, 9})
	if got := s.Shift(2).String(); got != "[3 5] [9 11]" {
		t.Fatalf("Shift(2) = %s", got)
	}
	if got := s.Shift(-1).String(); got != "[0 2] [6 8]" {
		t.Fatalf("Shift(-1) = %s", got)
	}
	// Shift can make intervals coalesce only if it saturates; plain shift preserves gaps.
	if got := s.Shift(0); !got.Equal(s) {
		t.Fatalf("Shift(0) = %s, want %s", got, s)
	}
}

func TestSetMinMaxNext(t *testing.T) {
	s := NewSet(Interval{4, 6}, Interval{10, 12})
	if v, ok := s.Min(); !ok || v != 4 {
		t.Fatalf("Min = %d,%v", v, ok)
	}
	if v, ok := s.Max(); !ok || v != 12 {
		t.Fatalf("Max = %d,%v", v, ok)
	}
	for from, want := range map[Tick]Tick{0: 4, 4: 4, 5: 5, 7: 10, 12: 12} {
		if v, ok := s.NextAtOrAfter(from); !ok || v != want {
			t.Fatalf("NextAtOrAfter(%d) = %d,%v want %d", from, v, ok, want)
		}
	}
	if _, ok := s.NextAtOrAfter(13); ok {
		t.Fatal("NextAtOrAfter(13) should be absent")
	}
	var empty Set
	if _, ok := empty.Min(); ok {
		t.Fatal("empty Min should be absent")
	}
	if _, ok := empty.Max(); ok {
		t.Fatal("empty Max should be absent")
	}
}

func TestSetCardinality(t *testing.T) {
	s := NewSet(Interval{1, 3}, Interval{10, 10})
	if got := s.Cardinality(); got != 4 {
		t.Fatalf("Cardinality = %d, want 4", got)
	}
}

func TestSetQuickProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}

	// Union is commutative and always normalized.
	unionComm := func(seedA, seedB int64) bool {
		a := randomSet(rand.New(rand.NewSource(seedA)))
		b := randomSet(rand.New(rand.NewSource(seedB)))
		u := a.Union(b)
		return u.Equal(b.Union(a)) && u.Normalized()
	}
	if err := quick.Check(unionComm, cfg); err != nil {
		t.Error(err)
	}

	// De Morgan within a window: complement(a ∪ b) == complement(a) ∩ complement(b).
	w := Interval{-60, 90}
	deMorgan := func(seedA, seedB int64) bool {
		a := randomSet(rand.New(rand.NewSource(seedA)))
		b := randomSet(rand.New(rand.NewSource(seedB)))
		lhs := a.Union(b).ComplementWithin(w)
		rhs := a.ComplementWithin(w).Intersect(b.ComplementWithin(w))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(deMorgan, cfg); err != nil {
		t.Error(err)
	}

	// Subtract then union restores the intersection-free part: (a-b) ∪ (a∩b) == a.
	partition := func(seedA, seedB int64) bool {
		a := randomSet(rand.New(rand.NewSource(seedA)))
		b := randomSet(rand.New(rand.NewSource(seedB)))
		return a.Subtract(b).Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(partition, cfg); err != nil {
		t.Error(err)
	}

	// Shifting forward then back is the identity away from saturation.
	shiftInv := func(seed int64, dRaw uint8) bool {
		a := randomSet(rand.New(rand.NewSource(seed)))
		d := Tick(dRaw % 50)
		return a.Shift(d).Shift(-d).Equal(a)
	}
	if err := quick.Check(shiftInv, cfg); err != nil {
		t.Error(err)
	}
}
