package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
)

// This file makes the server crash-safe: NewDurable threads the most.WAL
// and checkpoint machinery into the commit path, so every mutating request
// is on disk (page cache) before its acknowledgement leaves the server, and
// a restart rebuilds the database — and the idempotence cache — from the
// data directory.
//
// # Exactly-once across restarts
//
// The in-memory dedup cache alone cannot survive a crash, so the durable
// server writes two extra artifacts:
//
//   - a provenance stamp (most.Prov{Client, Req, Op}) on every WAL record a
//     mutating request produces, revealing on replay how far a request that
//     crashed mid-flight got; and
//   - one "note" WAL record per completed mutating request — a receipt
//     carrying the client, request id, and the version-1 encoding of the
//     response — appended after the request's own records.
//
// Because a request's records are appended in order by one goroutine and
// torn tails truncate from the end, a partial request's records are always
// a prefix of its operations.  Recovery therefore classifies every request
// it sees: a receipt means "completed — replay the recorded response to a
// retry"; provenance without a receipt means "partial — the retry must roll
// forward, skipping the operations already applied, instead of re-applying
// them".  Both classifications survive checkpoints via the dedup sidecar
// (dedup.json), written atomically under the exclusive commit lock just
// before the WAL is truncated.
//
// # Commit lock
//
// commitMu orders requests against checkpoints: every mutating request
// holds it shared for its whole execute-then-receipt critical section
// (SnapshotLoad, which rebases the WAL, holds it exclusively), and
// Checkpoint holds it exclusively.  A checkpoint therefore never cuts
// between a request's WAL records and its receipt, which is what makes the
// sidecar's receipt set consistent with the snapshot.

// Durable data-directory file names.
const (
	walFile   = "wal.log"
	snapFile  = "checkpoint.json"
	dedupFile = "dedup.json"
)

// receiptRec is one completed mutating request: the WAL note payload and
// the sidecar entry are the same shape.  Frame is the version-1 encoding of
// the response payload; Op is its frame opcode (OpResult or OpError).
type receiptRec struct {
	Client string `json:"c"`
	Req    uint64 `json:"r"`
	Op     uint8  `json:"op"`
	Frame  []byte `json:"f,omitempty"`
}

// partialRec is one request known to have applied operations 0..MaxOp but
// never completed — its retry rolls forward from MaxOp+1.
type partialRec struct {
	Client string `json:"c"`
	Req    uint64 `json:"r"`
	MaxOp  int    `json:"max_op"`
}

// dedupSidecar is the durable form of the idempotence state, written at
// every checkpoint (the WAL truncation would otherwise forget it).
type dedupSidecar struct {
	Receipts []receiptRec `json:"receipts,omitempty"`
	Partials []partialRec `json:"partials,omitempty"`
}

// RecoveryInfo reports what NewDurable rebuilt.
type RecoveryInfo struct {
	// Report is the WAL replay report; nil on a fresh start (no snapshot,
	// no log).  Report.Truncated with a correct database is expected after
	// a crash between checkpoint snapshot and WAL truncation: replay stops
	// at the first record the snapshot already contains.
	Report *most.RecoveryReport
	// Fresh is true when the data directory held no state and the seed
	// database was used.
	Fresh bool
	// Objects and Now describe the recovered database.
	Objects int
	Now     temporal.Tick
	// Receipts and Partials count the rebuilt exactly-once state.
	Receipts int
	Partials int
	// Elapsed is the wall-clock recovery time (also server.recovery_ms).
	Elapsed time.Duration
}

// clientEpoch fences zombie sessions: the newest epoch a ClientID has said
// Hello with, and the session that said it.
type clientEpoch struct {
	epoch uint64
	sess  *session
}

// NewDurable recovers (or seeds) a database from dir and returns a server
// whose commit path is write-ahead logged: wal.log, checkpoint.json, and
// dedup.json under dir.  On a fresh directory the seed callback (nil means
// an empty database) provides the initial state, which is logged as the
// WAL's base image.  cfg.CheckpointEvery > 0 checkpoints automatically
// every N mutating requests; Checkpoint may also be called explicitly, and
// a clean Shutdown checkpoints once more so the next start replays nothing.
func NewDurable(dir string, cfg Config, seed func() *most.Database) (*Server, *RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: durable dir: %w", err)
	}
	cfg.Health.Set(obs.StateRecovering)
	t0 := time.Now()
	snapPath := filepath.Join(dir, snapFile)
	walPath := filepath.Join(dir, walFile)
	dedupPath := filepath.Join(dir, dedupFile)

	snap, err := os.ReadFile(snapPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("server: read snapshot: %w", err)
	}
	walData, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("server: read wal: %w", err)
	}
	var side dedupSidecar
	if data, err := os.ReadFile(dedupPath); err == nil {
		if err := json.Unmarshal(data, &side); err != nil {
			return nil, nil, fmt.Errorf("server: dedup sidecar: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("server: read dedup sidecar: %w", err)
	}

	// Rebuild the exactly-once state: sidecar receipts first (they predate
	// everything in the log), then the log's notes and provenance stamps.
	type rkey struct {
		c string
		r uint64
	}
	recMap := map[rkey]receiptRec{}
	var order []rkey
	partials := map[string]map[uint64]int{}
	addReceipt := func(rec receiptRec) {
		k := rkey{rec.Client, rec.Req}
		if _, ok := recMap[k]; !ok {
			order = append(order, k)
		}
		recMap[k] = rec
		if m := partials[rec.Client]; m != nil {
			delete(m, rec.Req)
		}
	}
	for _, rec := range side.Receipts {
		addReceipt(rec)
	}
	for _, p := range side.Partials {
		m := partials[p.Client]
		if m == nil {
			m = map[uint64]int{}
			partials[p.Client] = m
		}
		m[p.Req] = p.MaxOp
	}

	info := &RecoveryInfo{}
	var db *most.Database
	if len(snap) == 0 && len(walData) == 0 {
		info.Fresh = true
		if seed != nil {
			db = seed()
		} else {
			db = most.NewDatabase()
		}
	} else {
		ob := &most.WALObserver{
			Note: func(tag string, data []byte) {
				if tag != noteTagReceipt {
					return
				}
				var rec receiptRec
				if json.Unmarshal(data, &rec) == nil && rec.Client != "" {
					addReceipt(rec)
				}
			},
			Applied: func(p most.Prov, _ temporal.Tick) {
				if p.Client == "" {
					return
				}
				if _, done := recMap[rkey{p.Client, p.Req}]; done {
					return
				}
				m := partials[p.Client]
				if m == nil {
					m = map[uint64]int{}
					partials[p.Client] = m
				}
				if op, ok := m[p.Req]; !ok || p.Op > op {
					m[p.Req] = p.Op
				}
			},
		}
		var rep *most.RecoveryReport
		db, rep, err = most.RecoverObserved(snap, walData, ob)
		if err != nil {
			return nil, nil, fmt.Errorf("server: recover: %w", err)
		}
		info.Report = rep
	}
	for c, m := range partials {
		if len(m) == 0 {
			delete(partials, c)
		}
	}

	// Reopen the log for appending (truncating any torn tail) and attach.
	// A clean checkpoint leaves a snapshot next to an empty log: the
	// snapshot already represents the state, so the attach must not write a
	// base image on top of it (the next recovery would replay it twice).
	w, err := most.OpenWAL(walPath)
	if err != nil {
		return nil, nil, err
	}
	if len(snap) > 0 && w.Records() == 0 {
		err = db.AttachWALNoBase(w)
	} else {
		err = db.AttachWAL(w)
	}
	if err != nil {
		w.Close()
		return nil, nil, err
	}

	cfg = cfg.normalized()
	eng := query.NewEngine(db)
	if cfg.Reg != nil {
		db.Instrument(cfg.Reg)
		eng.Instrument(cfg.Reg)
	}
	srv := New(db, eng, cfg)
	srv.durable = true
	srv.wal = w
	srv.snapPath = snapPath
	srv.dedupPath = dedupPath
	srv.checkpointEvery = cfg.CheckpointEvery
	srv.partial = partials

	for _, k := range order {
		rec := recMap[k]
		srv.recovered[rec.Client] = struct{}{}
		cache := srv.dedupFor(rec.Client)
		e, replay := cache.begin(rec.Req)
		if !replay {
			e.finish(wire.Frame{
				Op: wire.Opcode(rec.Op), ID: rec.Req,
				Version: wire.ProtocolV1, Payload: rec.Frame,
			})
		}
	}
	for c := range partials {
		srv.recovered[c] = struct{}{}
		info.Partials += len(partials[c])
	}

	info.Objects = db.Count()
	info.Now = db.Now()
	info.Receipts = len(order)
	info.Elapsed = time.Since(t0)
	srv.m.recoveryMs.Set(info.Elapsed.Milliseconds())
	return srv, info, nil
}

// noteTagReceipt tags completed-request receipt notes in the WAL.
const noteTagReceipt = "req"

// logReceipt appends a completed request's receipt note; f must be the
// version-1 response frame.  Called with commitMu held (shared or
// exclusive), after the request's own records.
func (srv *Server) logReceipt(client string, req uint64, f wire.Frame) {
	if client == "" || srv.wal == nil {
		return
	}
	data, err := json.Marshal(receiptRec{Client: client, Req: req, Op: uint8(f.Op), Frame: f.Payload})
	if err != nil {
		return
	}
	srv.wal.AppendNote(noteTagReceipt, data)
}

// takePartial consumes the recovered roll-forward state for one request:
// the highest operation index already applied before the crash, if replay
// saw provenance for (client, req) without a receipt.
func (srv *Server) takePartial(client string, req uint64) (int, bool) {
	if client == "" || !srv.durable {
		return 0, false
	}
	srv.partialMu.Lock()
	defer srv.partialMu.Unlock()
	m := srv.partial[client]
	if m == nil {
		return 0, false
	}
	op, ok := m[req]
	if ok {
		delete(m, req)
		if len(m) == 0 {
			delete(srv.partial, client)
		}
	}
	return op, ok
}

// wasRecovered reports whether recovery rebuilt any exactly-once state for
// the client — the durable half of HelloResp.Resumed.
func (srv *Server) wasRecovered(client string) bool {
	if client == "" {
		return false
	}
	srv.partialMu.Lock()
	defer srv.partialMu.Unlock()
	_, ok := srv.recovered[client]
	return ok
}

// afterMutation drives the auto-checkpoint policy.
func (srv *Server) afterMutation() {
	if !srv.durable || srv.checkpointEvery <= 0 {
		return
	}
	if srv.mutSince.Add(1)%uint64(srv.checkpointEvery) == 0 {
		srv.Checkpoint()
	}
}

// Checkpoint writes the dedup sidecar and a database snapshot, then
// truncates the WAL, all under the exclusive commit lock so no request is
// split across the cut.  Crash windows are safe in every order: the
// sidecar lands before the snapshot (its receipts are a superset-consistent
// view the WAL notes reproduce), and the snapshot lands durably before the
// log is truncated (most.Database.Checkpoint's fsync discipline).
func (srv *Server) Checkpoint() error {
	if !srv.durable {
		return errors.New("server: not a durable server")
	}
	srv.commitMu.Lock()
	defer srv.commitMu.Unlock()
	data, err := json.MarshalIndent(srv.collectSidecar(), "", " ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(srv.dedupPath, data); err != nil {
		return err
	}
	if err := srv.state().db.Checkpoint(srv.snapPath); err != nil {
		return err
	}
	srv.m.checkpoints.Inc()
	return nil
}

// collectSidecar serializes the live exactly-once state.  Under the
// exclusive commit lock every begun-and-executing request has finished, so
// the rare unfinished entry (reserved but still waiting on the commit lock)
// is safely skipped: its records will land in the post-checkpoint WAL.
func (srv *Server) collectSidecar() *dedupSidecar {
	side := &dedupSidecar{}
	srv.dedupMu.Lock()
	clients := make([]string, 0, len(srv.dedup))
	for c := range srv.dedup {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	for _, c := range clients {
		cache := srv.dedup[c]
		cache.mu.Lock()
		for _, id := range cache.order {
			e, ok := cache.entries[id]
			if !ok {
				continue
			}
			select {
			case <-e.done:
			default:
				continue
			}
			side.Receipts = append(side.Receipts, receiptRec{
				Client: c, Req: id, Op: uint8(e.frame.Op), Frame: e.frame.Payload,
			})
		}
		cache.mu.Unlock()
	}
	srv.dedupMu.Unlock()
	srv.partialMu.Lock()
	for c, m := range srv.partial {
		for r, op := range m {
			side.Partials = append(side.Partials, partialRec{Client: c, Req: r, MaxOp: op})
		}
	}
	srv.partialMu.Unlock()
	sort.Slice(side.Partials, func(i, j int) bool {
		a, b := side.Partials[i], side.Partials[j]
		return a.Client < b.Client || (a.Client == b.Client && a.Req < b.Req)
	})
	return side
}

// writeFileAtomic is the tmp-fsync-rename-dirsync discipline: after it
// returns, path holds either the old contents or the new, never a torn mix.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	serr := dir.Sync()
	dir.Close()
	return serr
}

// Abort kills the server without draining, checkpointing, or flushing: the
// listener closes, every session dies mid-write, and the WAL is left
// exactly as the page cache holds it.  This is the in-process equivalent
// of kill -9, used by the chaos harness to exercise crash recovery.
func (srv *Server) Abort() {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return
	}
	srv.closed = true
	ln := srv.ln
	sessions := make([]*session, 0, len(srv.sessions))
	for s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, s := range sessions {
		s.kill("server aborted")
	}
	srv.wg.Wait()
	if srv.wal != nil {
		srv.wal.Close()
	}
}

// finishDurable runs at the end of Shutdown: a clean drain earns a final
// checkpoint (the next start replays nothing), a timed-out one just closes
// the log — everything acknowledged is already in it.
func (srv *Server) finishDurable(clean bool) {
	if !srv.durable {
		return
	}
	if clean {
		srv.Checkpoint()
	}
	srv.wal.Close()
}
