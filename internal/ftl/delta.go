package ftl

import (
	"math"

	"github.com/mostdb/most/internal/temporal"
)

// DeltaAnalysis classifies a query for per-object incremental maintenance
// of its materialized answer (§3.5: "reevaluation has to occur only if the
// motion vector of the car changes" — and, with this analysis, only for the
// instantiations that bind the changed object).
//
// The evaluator computes every tuple's satisfaction set per instantiation:
// atoms are solved with all variables bound, and the combining operators
// (AND/OR/NOT/UNTIL/the bounded modalities/the assignment quantifier) act
// tuple-by-tuple.  A tuple's set therefore depends only on the objects the
// tuple binds — except where the pipeline mixes instantiations:
//
//   - answer assembly projects the formula relation to the RETRIEVE
//     targets, unioning times over the projected-away variables, so a tuple
//     of the answer can depend on objects it no longer names.  A binding
//     variable is maintainable only if it is a target.
//   - the assignment quantifier [x <- t] f builds x's domain from t's
//     values over all instantiations of t's free variables; when two
//     FROM-bound variables meet under one assignment, a change to either
//     object can shift the other's tuples.  Such variables are coupled and
//     not maintainable.
//
// Bounded/Depth capture the window-validity side: a tuple recomputed with
// window [a, a+h] agrees with a fresh evaluation at a later tick t (for
// membership at t) only when t+Depth <= a+h, and only when every temporal
// operator has a finite lookahead.  Unbounded EVENTUALLY/ALWAYS/UNTIL (and
// EVENTUALLY AFTER, whose lookahead is the whole window) force full
// reevaluation regardless of which variables changed.
type DeltaAnalysis struct {
	// Bounded reports whether every temporal operator in the formula has a
	// finite, constant lookahead.
	Bounded bool
	// Depth is the maximal lookahead in ticks: how far beyond a tick t the
	// formula's truth at t can depend on the future.  Meaningful only when
	// Bounded.
	Depth temporal.Tick
	// Maintainable maps each FROM-bound variable to whether the answer
	// tuples binding it can be patched per object.
	Maintainable map[string]bool
}

// AnalyzeDelta classifies a (normalized) query for delta maintenance.
func AnalyzeDelta(q *Query) DeltaAnalysis {
	depth, bounded := formulaDepth(q.Where)
	a := DeltaAnalysis{Bounded: bounded, Depth: depth, Maintainable: map[string]bool{}}
	targets := map[string]bool{}
	for _, t := range q.Targets {
		targets[t] = true
	}
	fromVars := map[string]bool{}
	for _, b := range q.Bindings {
		fromVars[b.Var] = true
		a.Maintainable[b.Var] = targets[b.Var]
	}
	markCoupled(q.Where, fromVars, a.Maintainable)
	return a
}

// markCoupled clears Maintainable for every FROM-bound variable that shares
// an assignment quantifier with another FROM-bound variable.
func markCoupled(f Formula, fromVars map[string]bool, maintainable map[string]bool) {
	switch n := f.(type) {
	case Assign:
		var shared []string
		for _, v := range FreeVars(n) {
			if fromVars[v] {
				shared = append(shared, v)
			}
		}
		if len(shared) >= 2 {
			for _, v := range shared {
				maintainable[v] = false
			}
		}
		markCoupled(n.Body, fromVars, maintainable)
	case And:
		markCoupled(n.L, fromVars, maintainable)
		markCoupled(n.R, fromVars, maintainable)
	case Or:
		markCoupled(n.L, fromVars, maintainable)
		markCoupled(n.R, fromVars, maintainable)
	case Implies:
		markCoupled(n.L, fromVars, maintainable)
		markCoupled(n.R, fromVars, maintainable)
	case Not:
		markCoupled(n.F, fromVars, maintainable)
	case Until:
		markCoupled(n.L, fromVars, maintainable)
		markCoupled(n.R, fromVars, maintainable)
	case Nexttime:
		markCoupled(n.F, fromVars, maintainable)
	case Eventually:
		markCoupled(n.F, fromVars, maintainable)
	case Always:
		markCoupled(n.F, fromVars, maintainable)
	}
}

// formulaDepth returns the formula's maximal temporal lookahead and whether
// it is finite.  Only literal numeric bounds count as finite: a bound given
// by a parameter or arithmetic is treated as unbounded, which is merely
// conservative (the fallback path evaluates it exactly).
func formulaDepth(f Formula) (temporal.Tick, bool) {
	switch n := f.(type) {
	case BoolLit, Compare, Inside, Outside, WithinSphere:
		return 0, true
	case And:
		return maxDepth(n.L, n.R)
	case Or:
		return maxDepth(n.L, n.R)
	case Implies:
		return maxDepth(n.L, n.R)
	case Not:
		return formulaDepth(n.F)
	case Nexttime:
		d, ok := formulaDepth(n.F)
		if !ok {
			return 0, false
		}
		return d.Add(1), true
	case Eventually:
		if n.Within == nil {
			// EVENTUALLY and EVENTUALLY AFTER both look ahead to the end of
			// the window.
			return 0, false
		}
		b, ok := literalBound(n.Within)
		if !ok {
			return 0, false
		}
		d, ok := formulaDepth(n.F)
		if !ok {
			return 0, false
		}
		return b.Add(d), true
	case Always:
		if n.For == nil {
			return 0, false
		}
		b, ok := literalBound(n.For)
		if !ok {
			return 0, false
		}
		d, ok := formulaDepth(n.F)
		if !ok {
			return 0, false
		}
		return b.Add(d), true
	case Until:
		if n.Within == nil {
			return 0, false
		}
		b, ok := literalBound(n.Within)
		if !ok {
			return 0, false
		}
		d, ok := maxDepth(n.L, n.R)
		if !ok {
			return 0, false
		}
		return b.Add(d), true
	case Assign:
		return formulaDepth(n.Body)
	default:
		return 0, false
	}
}

func maxDepth(l, r Formula) (temporal.Tick, bool) {
	dl, ok := formulaDepth(l)
	if !ok {
		return 0, false
	}
	dr, ok := formulaDepth(r)
	if !ok {
		return 0, false
	}
	if dr > dl {
		return dr, true
	}
	return dl, true
}

// literalBound resolves a temporal bound expression when it is a
// non-negative numeric literal, rounded exactly as the evaluator rounds it.
func literalBound(e Expr) (temporal.Tick, bool) {
	n, ok := e.(Num)
	if !ok || n.V < 0 {
		return 0, false
	}
	return temporal.Tick(math.Round(n.V)), true
}
