package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzWireDecode feeds arbitrary byte streams to the frame decoder and the
// payload unmarshalers of both protocol versions.  The invariants: the
// decoder never panics, never allocates more than its configured payload
// bound per frame, consumes the stream frame by frame until an error or
// EOF, every frame it accepts re-encodes to bytes that decode to an
// identical frame, and every v2 payload that decodes re-encodes to a
// canonical byte string (decode∘encode is idempotent).  Hello payloads
// additionally drive the negotiation state machine: whatever MaxVersion a
// hostile client declares, the negotiated version stays in
// [ProtocolV1, MaxProtocolVersion].
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: valid frames of each shape in both encodings, then
	// classic hostile inputs.
	ping, _ := AppendFrame(nil, Frame{Op: OpPing, ID: 1})
	qf, _ := Encode(OpQuery, 2, QueryReq{Src: "RETRIEVE o FROM Vehicles o WHERE TRUE", Horizon: 50})
	query, _ := AppendFrame(nil, qf)
	nf, _ := Encode(OpNotify, 0, Notify{SubID: 3, Seq: 9, Answer: []AnswerRow{{Vals: []Value{{Kind: 1, Obj: "car-1"}}, Start: 0, End: 7}}})
	notify, _ := AppendFrame(nil, nf)
	two := append(append([]byte(nil), ping...), query...)

	qf2, _ := EncodeFrame(ProtocolV2, OpQuery, 2, &QueryReq{Src: "RETRIEVE o FROM Vehicles o WHERE TRUE", Horizon: 50})
	query2, _ := AppendFrame(nil, qf2)
	uf2, _ := EncodeFrame(ProtocolV2, OpUpdateBatch, 4, &UpdateBatchReq{Ops: []UpdateOp{
		{Op: OpSetMotion, ID: "car-1", VX: 1.5, VY: -2},
		{Op: OpDelete, ID: "car-2"},
	}})
	update2, _ := AppendFrame(nil, uf2)
	nf2, _ := EncodeFrame(ProtocolV2, OpNotify, 0, &Notify{SubID: 3, Seq: 9, Answer: []AnswerRow{{Vals: []Value{{Kind: 1, Obj: "car-1"}}, Start: 0, End: 7}}})
	notify2, _ := AppendFrame(nil, nf2)
	mixed := append(append([]byte(nil), query...), update2...)

	zf2, _ := EncodeFrame(ProtocolV2, OpZoneMap, 5, &ZoneMapResp{Epoch: 1, Zones: []Zone{
		{ID: 0, MinX: 0, MinY: 0, MaxX: 100, MaxY: 100, Addr: "127.0.0.1:1"},
	}, Replicated: []string{"POIs"}})
	zonemap2, _ := AppendFrame(nil, zf2)
	hf2, _ := EncodeFrame(ProtocolV2, OpHandoff, 6, &HandoffReq{ID: "car-1", Version: 3, From: "127.0.0.1:1", Object: []byte(`{"id":"car-1"}`)})
	handoff2, _ := AppendFrame(nil, hf2)
	ff2, _ := EncodeFrame(ProtocolV2, OpForward, 7, &ForwardReq{Origin: "cli-9", ReqID: 44, Ops: []UpdateOp{
		{Op: OpSetMotion, ID: "car-1", VX: 0.5, VY: 0.5},
	}})
	forward2, _ := AppendFrame(nil, ff2)

	hello, _ := Encode(OpHello, 1, HelloReq{ClientID: "fuzz", MaxVersion: 2})
	helloFrame, _ := AppendFrame(nil, hello)
	helloHostile, _ := Encode(OpHello, 1, HelloReq{ClientID: "fuzz", MaxVersion: 999})
	helloHostileFrame, _ := AppendFrame(nil, helloHostile)

	f.Add(ping)
	f.Add(query)
	f.Add(notify)
	f.Add(two)
	f.Add(query2)
	f.Add(update2)
	f.Add(notify2)
	f.Add(mixed)
	f.Add(zonemap2)
	f.Add(handoff2)
	f.Add(forward2)
	f.Add(helloFrame)
	f.Add(helloHostileFrame)
	f.Add([]byte{})
	f.Add([]byte("MW"))                                         // truncated header
	f.Add(append([]byte(nil), ping[:HeaderSize]...))            // header only
	f.Add([]byte("GET / HTTP/1.1\r\nHost: mostserver\r\n\r\n")) // wrong protocol
	huge := append([]byte(nil), ping...)
	huge[12], huge[13], huge[14], huge[15] = 0xff, 0xff, 0xff, 0xff // 4 GiB length
	f.Add(huge)

	const maxPayload = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data), maxPayload)
		for {
			fr, err := d.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					!bytes.Contains([]byte(err.Error()), []byte("wire:")) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(fr.Payload) > maxPayload {
				t.Fatalf("decoder returned %d payload bytes, bound is %d", len(fr.Payload), maxPayload)
			}
			// Accepted frames must re-encode losslessly, version included.
			buf, err := AppendFrame(nil, fr)
			if err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			fr2, err := NewDecoder(bytes.NewReader(buf), maxPayload).Next()
			if err != nil {
				t.Fatalf("re-decode of accepted frame failed: %v", err)
			}
			if fr2.Op != fr.Op || fr2.ID != fr.ID || fr2.Version != fr.Version || !bytes.Equal(fr2.Payload, fr.Payload) {
				t.Fatal("re-encoded frame differs")
			}
			// Payload unmarshaling must not panic, whatever the bytes and
			// whichever encoding the version byte selects.
			switch fr.Op {
			case OpHello:
				var h HelloReq
				if Unmarshal(fr, &h) == nil {
					// Negotiation must map any advertised maximum into the
					// implemented window.
					for _, serverMax := range []int{-1, 0, 1, 2, 1000} {
						v := NegotiateVersion(h.MaxVersion, serverMax)
						if v < ProtocolV1 || v > MaxProtocolVersion {
							t.Fatalf("NegotiateVersion(%d, %d) = %d, outside [1, %d]",
								h.MaxVersion, serverMax, v, MaxProtocolVersion)
						}
					}
				}
			case OpQuery:
				checkPayload(t, fr, &QueryReq{}, &QueryReq{})
			case OpUpdateBatch:
				checkPayload(t, fr, &UpdateBatchReq{}, &UpdateBatchReq{})
			case OpAdvance:
				checkPayload(t, fr, &AdvanceReq{}, &AdvanceReq{})
			case OpSubscribe:
				checkPayload(t, fr, &SubscribeReq{}, &SubscribeReq{})
			case OpNotify:
				checkPayload(t, fr, &Notify{}, &Notify{})
			case OpSubClosed:
				checkPayload(t, fr, &SubClosed{}, &SubClosed{})
			case OpZoneMap:
				checkPayload(t, fr, &ZoneMapResp{}, &ZoneMapResp{})
			case OpHandoff:
				checkPayload(t, fr, &HandoffReq{}, &HandoffReq{})
			case OpForward:
				checkPayload(t, fr, &ForwardReq{}, &ForwardReq{})
			}
		}
	})
}

// checkPayload unmarshals a fuzzed frame into a; if the payload is
// accepted and the frame is v2, it checks decode∘encode idempotence: the
// re-encoded bytes b1 must decode (into b) and re-encode to exactly b1.
// This holds bit-for-bit even for NaN floats, since v2 carries IEEE-754
// bits verbatim.
func checkPayload(t *testing.T, fr Frame, a, b binaryPayload) {
	t.Helper()
	if err := Unmarshal(fr, a); err != nil || fr.Version != ProtocolV2 {
		return
	}
	b1 := a.appendBinary(nil)
	if err := Unmarshal(Frame{Op: fr.Op, Version: ProtocolV2, Payload: b1}, b); err != nil {
		if len(b1) > 0 {
			t.Fatalf("canonical re-encode of accepted %s payload does not decode: %v", fr.Op, err)
		}
		return
	}
	b2 := b.appendBinary(nil)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("%s payload not canonical after one decode/encode cycle:\n b1: %x\n b2: %x", fr.Op, b1, b2)
	}
}
