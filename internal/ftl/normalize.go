package ftl

// Normalize is the engine's rewrite stage: a conservative,
// semantics-preserving simplification applied between parsing and
// evaluation.  It performs
//
//   - implication desugaring:   f IMPLIES g   =>  (NOT f) OR g
//   - double-negation removal:  NOT NOT f     =>  f
//   - negated-literal folding:  NOT TRUE      =>  FALSE (and vice versa)
//
// recursing into every sub-formula.  The pass deliberately stops short of
// aggressive TRUE/FALSE short-circuiting: folding `f AND FALSE` to FALSE
// could change the free-variable set of a sub-formula and therefore the
// column layout of intermediate relations in the evaluator.  Each rewrite
// here preserves free variables exactly, so evaluating Normalize(f) is
// always equivalent to evaluating f (a property FuzzFTLEval checks).
func Normalize(f Formula) Formula {
	switch n := f.(type) {
	case And:
		return And{L: Normalize(n.L), R: Normalize(n.R)}
	case Or:
		return Or{L: Normalize(n.L), R: Normalize(n.R)}
	case Implies:
		return Or{L: Normalize(Not{F: n.L}), R: Normalize(n.R)}
	case Not:
		inner := Normalize(n.F)
		switch g := inner.(type) {
		case Not:
			return g.F
		case BoolLit:
			return BoolLit{V: !g.V}
		}
		return Not{F: inner}
	case Until:
		return Until{L: Normalize(n.L), R: Normalize(n.R), Within: n.Within}
	case Nexttime:
		return Nexttime{F: Normalize(n.F)}
	case Eventually:
		return Eventually{F: Normalize(n.F), Within: n.Within, After: n.After}
	case Always:
		return Always{F: Normalize(n.F), For: n.For}
	case Assign:
		return Assign{Var: n.Var, Term: n.Term, Body: Normalize(n.Body)}
	default:
		// Atoms (Compare, Inside, Outside, WithinSphere, BoolLit) are leaves.
		return f
	}
}

// NormalizeQuery returns a copy of q with its WHERE clause normalized.
func NormalizeQuery(q Query) Query {
	q.Where = Normalize(q.Where)
	return q
}
