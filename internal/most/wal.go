package most

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/temporal"
)

// This file gives the MOST database crash recovery: an append-only
// write-ahead log of explicit updates, periodic snapshots (checkpoints),
// and a replay path that reconstructs an identical database state.  The
// paper assumes the DBMS simply survives ("the database is updated"); a
// serving system must make that true when the machine hosting it does not.
//
// # Log format
//
// One record per line:
//
//	crc32hex<space>json\n
//
// where crc32hex is the IEEE CRC-32 of the JSON payload in fixed-width
// hex.  Records are of three kinds, mirroring the three ways database
// state changes:
//
//   - "class"  — a DefineClass, carrying the class schema;
//   - "clock"  — an Advance, carrying the absolute new tick;
//   - "update" — one explicit update (§2.3), carrying the update kind,
//     the object id, the attribute, and the full post-image of the object
//     revision (nil for deletes).  Post-images make replay idempotent in
//     value: installing the recorded revision reproduces the exact object
//     state regardless of how the mutation computed it.
//
// Records are written inside the database's commit critical sections
// (appendLog under logMu, DefineClass under metaMu, Advance under the
// exclusive clock lock), so WAL order equals commit order; replaying the
// records in sequence through the normal mutation paths therefore rebuilds
// a byte-identical SnapshotJSON.
//
// # Failure safety
//
// Replay verifies each record's CRC and stops at the first corrupt,
// truncated, or inapplicable record, returning everything recovered up to
// that point plus a RecoveryReport — a partially torn tail (the common
// crash artifact) costs only the torn suffix, never a panic.  OpenWAL
// truncates any torn tail before appending, so a log reopened after a
// crash stays recoverable end to end.
//
// Appends buffer in the OS page cache; they survive a process crash as-is,
// but power-loss durability requires explicit WAL.Sync calls.  Checkpoint
// fsyncs its snapshot (and the containing directory) before truncating the
// log, so a checkpoint never trades a durable log for a volatile snapshot.

// walRecord is one WAL entry.  Beyond the original three kinds, "note" is
// an opaque annotation that does not touch database state on replay (the
// server logs executed-request receipts through it), and "reset" discards
// everything recovered so far and restarts replay from an empty database
// (written when the served database is wholesale replaced, so the log alone
// reconstructs the post-replacement state even over a stale snapshot).
type walRecord struct {
	Seq    uint64         `json:"seq"`
	Kind   string         `json:"kind"` // "class" | "clock" | "update" | "note" | "reset"
	Now    *temporal.Tick `json:"now,omitempty"`
	Class  *classDTO      `json:"class,omitempty"`
	Update *walUpdate     `json:"update,omitempty"`
	Prov   *Prov          `json:"prov,omitempty"`
	Tag    string         `json:"tag,omitempty"`
	Data   []byte         `json:"data,omitempty"`
}

// walUpdate serializes one explicit update with its post-image.
type walUpdate struct {
	Tick   temporal.Tick `json:"tick"`
	Kind   UpdateKind    `json:"kind"`
	Object string        `json:"object"`
	Attr   string        `json:"attr,omitempty"`
	After  *objectDTO    `json:"after,omitempty"`
}

// WAL is an append-only write-ahead log.  Attach one to a Database with
// AttachWAL; every subsequent class definition, clock advance, and explicit
// update is appended before the operation returns.  Safe for concurrent use
// (the database appends from whatever goroutine commits).
//
// # Group commit
//
// Concurrent appends coalesce: each append serializes its record into a
// shared staging buffer, and one appender — the leader — writes the whole
// batch in a single Write while later arrivals stage behind it.  Every
// append still blocks until the batch holding its record has been written,
// so the "record is in the page cache when append returns" contract is
// unchanged; what changes is the syscall count under contention (one per
// batch instead of one per record — wal.flushes vs wal.appends in /obs).
//
// A write error marks the WAL broken: further appends are dropped and Err
// returns the first failure.  The database keeps serving — losing the log
// degrades durability, not availability — but callers should treat a
// non-nil Err as "stop trusting this log".
type WAL struct {
	mu   sync.Mutex
	w    io.Writer
	file *os.File // non-nil when opened by path; enables Checkpoint truncation
	seq  uint64
	err  error

	// Group-commit state, all under mu.  staging accumulates serialized
	// records for the batch identified by gen; spare is the double buffer
	// the leader swaps in while writing; flushedGen is the newest batch
	// generation durably handed to the writer.  flushed is signalled after
	// every batch write (lazily created on first append).
	staging    []byte
	spare      []byte
	gen        uint64
	flushedGen uint64
	flushing   bool
	flushed    *sync.Cond

	// Observability instruments (nil when uninstrumented); set via
	// WAL.Instrument in obs.go, read under mu.
	appends  *obs.Counter
	appendNs *obs.Histogram
	flushes  *obs.Counter
	syncs    *obs.Counter
	syncNs   *obs.Histogram
}

// NewWAL wraps an arbitrary writer (e.g. a bytes.Buffer in tests or an
// already-open file).  If w implements interface{ Reset() } the WAL can be
// checkpointed.
func NewWAL(w io.Writer) *WAL { return &WAL{w: w} }

// OpenWAL opens (creating if needed) a file-backed WAL for appending.  An
// existing log is preserved, except that a torn tail — a half-written final
// record with no trailing newline, the usual artifact of a crash mid-append —
// is truncated away first.  Appending onto the fragment would otherwise merge
// the new record into the same line, corrupting it too and cutting recovery
// off at that point.  The torn record itself was never durably committed, so
// dropping it is the correct outcome.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("most: open wal: %w", err)
	}
	end, n, err := scanRecords(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("most: open wal: %w", err)
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("most: open wal: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("most: open wal: %w", err)
	}
	return &WAL{w: f, file: f, seq: uint64(n)}, nil
}

// scanRecords finds the byte offset just past the last newline-terminated
// record and the number of such records.  Anything beyond end is a torn
// fragment.
func scanRecords(f *os.File) (end int64, n int, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			return end, n, nil
		}
		if err != nil {
			return 0, 0, err
		}
		end += int64(len(line))
		n++
	}
}

// Records returns the number of records appended through this handle (for
// file-backed WALs, including those already on disk when opened).
func (w *WAL) Records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Err returns the first append failure, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Sync flushes a file-backed WAL to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.file == nil {
		return nil
	}
	var t0 time.Time
	if w.syncNs != nil {
		t0 = time.Now()
	}
	err := w.file.Sync()
	w.syncs.Inc()
	w.syncNs.Since(t0)
	return err
}

// Close closes a file-backed WAL.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.file == nil {
		return nil
	}
	return w.file.Close()
}

// append frames, checksums, stages, and group-commits one record: the
// record joins the staging batch, and the call returns once the batch
// holding it has been written (by this appender if it elected itself
// leader, by the current leader otherwise).  Errors are sticky.
func (w *WAL) append(rec walRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if w.flushed == nil {
		w.flushed = sync.NewCond(&w.mu)
	}
	var t0 time.Time
	if w.appendNs != nil {
		t0 = time.Now()
	}
	w.seq++
	rec.Seq = w.seq
	payload, err := json.Marshal(rec)
	if err != nil {
		w.err = fmt.Errorf("most: wal encode: %w", err)
		return
	}
	w.staging = append(w.staging, fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))...)
	w.staging = append(w.staging, ' ')
	w.staging = append(w.staging, payload...)
	w.staging = append(w.staging, '\n')
	myGen := w.gen
	if w.flushing {
		// A leader is writing: it will pick this record up when it swaps
		// buffers for its next batch.  Wait for that batch to land.
		for w.flushedGen <= myGen && w.err == nil {
			w.flushed.Wait()
		}
	} else {
		// Become the leader: write batches until the staging buffer drains,
		// releasing mu during each write so later appends coalesce behind us.
		w.flushing = true
		for len(w.staging) > 0 && w.err == nil {
			batch := w.staging
			batchGen := w.gen
			w.staging = w.spare[:0]
			w.spare = nil
			w.gen++
			w.mu.Unlock()
			_, werr := w.w.Write(batch)
			w.mu.Lock()
			w.spare = batch[:0]
			if werr != nil {
				w.err = fmt.Errorf("most: wal append: %w", werr)
			}
			w.flushes.Inc()
			w.flushedGen = batchGen + 1
			w.flushed.Broadcast()
		}
		w.flushing = false
	}
	if w.err != nil {
		return
	}
	w.appends.Inc()
	w.appendNs.Since(t0)
}

// reset truncates the log after a checkpoint.  Only file-backed WALs and
// writers with a Reset method (bytes.Buffer) support it.
func (w *WAL) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case w.file != nil:
		if err := w.file.Truncate(0); err != nil {
			return fmt.Errorf("most: wal truncate: %w", err)
		}
		if _, err := w.file.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("most: wal truncate: %w", err)
		}
	default:
		r, ok := w.w.(interface{ Reset() })
		if !ok {
			return fmt.Errorf("most: this WAL's writer cannot be truncated")
		}
		r.Reset()
	}
	w.seq = 0
	w.err = nil
	// A broken WAL may have left staged-but-unwritten records behind; a
	// truncation starts from a clean slate.
	w.staging = w.staging[:0]
	return nil
}

func (w *WAL) appendClass(c *Class) {
	cd := encodeClass(c)
	w.append(walRecord{Kind: "class", Class: &cd})
}

func (w *WAL) appendClock(now temporal.Tick, p *Prov) {
	w.append(walRecord{Kind: "clock", Now: &now, Prov: p})
}

func (w *WAL) appendUpdate(u Update) {
	wu := walUpdate{Tick: u.Tick, Kind: u.Kind, Object: string(u.Object), Attr: u.Attr}
	if u.After != nil {
		od := encodeObject(u.After)
		wu.After = &od
	}
	w.append(walRecord{Kind: "update", Update: &wu, Prov: u.Prov})
}

// AppendNote logs an opaque annotation record.  Notes do not change
// database state on replay; WALObserver surfaces them during recovery.
// The server uses notes to make its idempotence cache durable: one note
// per executed mutating request, appended after the request's own records.
func (w *WAL) AppendNote(tag string, data []byte) error {
	w.append(walRecord{Kind: "note", Tag: tag, Data: data})
	return w.Err()
}

// Reset truncates the log (after an external checkpoint equivalent), like
// the truncation Checkpoint performs.  Callers own the proof that the
// state the log represented is durable elsewhere.
func (w *WAL) Reset() error { return w.reset() }

// AttachWAL starts logging the database to w.  If the database already
// holds state and the log is empty, a base image (classes, clock, one
// insert per live object) is written first so the log alone reconstructs
// the current state; if the log already has records — reopened after a
// crash, or freshly checkpointed — the base image is skipped, because the
// log (plus its checkpoint snapshot) already represents the state.
//
// Attach at most one WAL per database, before or between commits; the
// attachment itself quiesces in-flight commits.
func (db *Database) AttachWAL(w *WAL) error {
	if w == nil {
		return fmt.Errorf("most: nil WAL")
	}
	// Quiesce every commit path so the base image and the attach point are
	// one atomic cut: clock + all shards block updates and Advance, metaMu
	// blocks DefineClass.
	db.lockAllRead()
	defer db.unlockAllRead()
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	if !db.wal.CompareAndSwap(nil, w) {
		return fmt.Errorf("most: database already has a WAL attached")
	}
	// An already-instrumented database extends its instrumentation to the
	// newly attached log.
	if o := db.obsv.Load(); o != nil {
		w.Instrument(o.reg)
	}
	if w.Records() > 0 {
		return w.Err()
	}
	empty := db.now == 0 && len(db.classes) == 0
	for i := range db.shards {
		empty = empty && len(db.shards[i].objects) == 0
	}
	if empty {
		return w.Err()
	}
	db.appendBaseImageLocked(w)
	return w.Err()
}

// AttachWALNoBase attaches w without ever writing a base image, whatever
// the database and log contents.  A durable server uses it when reopening
// an empty post-checkpoint log next to a snapshot that already represents
// the database: re-logging the state would make the snapshot and the log
// redundantly overlap, breaking the next recovery's replay.
func (db *Database) AttachWALNoBase(w *WAL) error {
	if w == nil {
		return fmt.Errorf("most: nil WAL")
	}
	db.lockAllRead()
	defer db.unlockAllRead()
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	if !db.wal.CompareAndSwap(nil, w) {
		return fmt.Errorf("most: database already has a WAL attached")
	}
	if o := db.obsv.Load(); o != nil {
		w.Instrument(o.reg)
	}
	return w.Err()
}

// appendBaseImageLocked re-logs the database's full current state (classes,
// clock, one insert per live object).  Callers hold the full read quiesce.
func (db *Database) appendBaseImageLocked(w *WAL) {
	dto := db.snapshotDTOLocked()
	for i := range dto.Classes {
		w.append(walRecord{Kind: "class", Class: &dto.Classes[i]})
	}
	w.appendClock(dto.Now, nil)
	for i := range dto.Objects {
		w.append(walRecord{Kind: "update", Update: &walUpdate{
			Tick: dto.Now, Kind: UpdateInsert, Object: dto.Objects[i].ID, After: &dto.Objects[i],
		}})
	}
}

// DetachWAL unhooks and returns the database's WAL (nil if none was
// attached).  Subsequent commits stop logging; the caller typically hands
// the WAL to a replacement database via RebaseWAL.
func (db *Database) DetachWAL() *WAL { return db.wal.Swap(nil) }

// RebaseWAL truncates w and re-logs this database's full state behind a
// "reset" record, then attaches w.  Replaying the resulting log discards
// everything accumulated before the reset — including a stale checkpoint
// snapshot — so the log alone reconstructs exactly this database.  This is
// the durable form of wholesale state replacement (SnapshotLoad): a crash
// mid-rebase recovers to a prefix of the new state, which the retried
// replacement request then overwrites.
func (db *Database) RebaseWAL(w *WAL) error {
	if w == nil {
		return fmt.Errorf("most: nil WAL")
	}
	if err := w.reset(); err != nil {
		return err
	}
	db.lockAllRead()
	defer db.unlockAllRead()
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	if !db.wal.CompareAndSwap(nil, w) {
		return fmt.Errorf("most: database already has a WAL attached")
	}
	if o := db.obsv.Load(); o != nil {
		w.Instrument(o.reg)
	}
	w.append(walRecord{Kind: "reset"})
	db.appendBaseImageLocked(w)
	return w.Err()
}

// Checkpoint writes a consistent snapshot of the current state to snapPath
// (atomically, via a temp file and rename) and truncates the attached WAL:
// recovery then needs only the snapshot plus the post-checkpoint log tail.
// Commits are quiesced for the duration, exactly like SnapshotJSON.
func (db *Database) Checkpoint(snapPath string) error {
	w := db.wal.Load()
	if w == nil {
		return fmt.Errorf("most: no WAL attached")
	}
	db.lockAllRead()
	defer db.unlockAllRead()
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	data, err := json.MarshalIndent(db.snapshotDTOLocked(), "", "  ")
	if err != nil {
		return err
	}
	// The WAL may only be truncated once the snapshot that replaces it is
	// durable: fsync the temp file before the rename, and fsync the
	// directory after, so a power loss at any point leaves either the old
	// (snapshot, log) pair or the new one — never a missing snapshot with
	// an already-empty log.
	tmp := snapPath + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("most: checkpoint: %w", err)
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		return fmt.Errorf("most: checkpoint: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("most: checkpoint: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("most: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		return fmt.Errorf("most: checkpoint: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(snapPath)); err == nil {
		serr := dir.Sync()
		dir.Close()
		if serr != nil {
			return fmt.Errorf("most: checkpoint: %w", serr)
		}
	} else {
		return fmt.Errorf("most: checkpoint: %w", err)
	}
	return w.reset()
}

// RecoveryReport describes how a recovery went.
type RecoveryReport struct {
	// Records is the number of WAL records successfully applied.
	Records int
	// Truncated is true when replay stopped before the end of the log —
	// the tail was corrupt, torn, or inapplicable.  The returned database
	// holds everything up to the failure point.
	Truncated bool
	// BadLine is the 1-based line number of the first bad record (0 when
	// !Truncated).
	BadLine int
	// Reason says why replay stopped (empty when !Truncated).
	Reason string
}

// WALObserver watches a recovery replay.  Both callbacks are optional.
// Note fires for every "note" record (which never touches database state);
// Applied fires after every successfully replayed provenance-stamped record
// with the database clock as of that record.  Together they let a durable
// server rebuild its exactly-once state: notes carry completed-request
// receipts, and Applied reveals how far a request that crashed mid-flight
// got, so its retry can roll forward instead of re-applying.
type WALObserver struct {
	Note    func(tag string, data []byte)
	Applied func(p Prov, now temporal.Tick)
}

// Recover rebuilds a database from an optional checkpoint snapshot and a
// WAL.  A nil/empty snapshot means the log starts from an empty database.
// Corrupt or truncated logs are not an error: replay keeps everything up
// to the first bad record and reports the damage.  An unreadable snapshot
// IS an error — there is no safe prefix to fall back to.
func Recover(snapshot, wal []byte) (*Database, *RecoveryReport, error) {
	return RecoverObserved(snapshot, wal, nil)
}

// RecoverObserved is Recover with a replay observer (see WALObserver).
func RecoverObserved(snapshot, wal []byte, ob *WALObserver) (*Database, *RecoveryReport, error) {
	var db *Database
	if len(snapshot) > 0 {
		var err error
		db, err = LoadSnapshotJSON(snapshot)
		if err != nil {
			return nil, nil, err
		}
	} else {
		db = NewDatabase()
	}
	rep := &RecoveryReport{}
	stop := func(line int, reason string) {
		rep.Truncated = true
		rep.BadLine = line
		rep.Reason = reason
	}
	lines := bytes.Split(wal, []byte("\n"))
	for i, line := range lines {
		if len(line) == 0 {
			if i == len(lines)-1 {
				break // trailing newline
			}
			stop(i+1, "empty record")
			break
		}
		rec, err := parseWALLine(line)
		if err != nil {
			stop(i+1, err.Error())
			break
		}
		switch rec.Kind {
		case "reset":
			// Wholesale state replacement: discard everything recovered so
			// far (snapshot included) and rebuild from the records that
			// follow — the base image the rebase logged.
			db = NewDatabase()
		case "note":
			if ob != nil && ob.Note != nil {
				ob.Note(rec.Tag, rec.Data)
			}
		default:
			if err := db.applyWALRecord(rec); err != nil {
				stop(i+1, err.Error())
				break
			}
			if rec.Prov != nil && ob != nil && ob.Applied != nil {
				ob.Applied(*rec.Prov, db.Now())
			}
		}
		if rep.Truncated {
			break
		}
		rep.Records++
	}
	return db, rep, nil
}

// RecoverFiles is Recover over a snapshot path (missing file = no
// checkpoint) and a WAL path (missing file = empty log).
func RecoverFiles(snapPath, walPath string) (*Database, *RecoveryReport, error) {
	return RecoverFilesObserved(snapPath, walPath, nil)
}

// RecoverFilesObserved is RecoverFiles with a replay observer.
func RecoverFilesObserved(snapPath, walPath string, ob *WALObserver) (*Database, *RecoveryReport, error) {
	snap, err := os.ReadFile(snapPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	wal, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	return RecoverObserved(snap, wal, ob)
}

func parseWALLine(line []byte) (walRecord, error) {
	var rec walRecord
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return rec, fmt.Errorf("bad frame")
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return rec, fmt.Errorf("bad checksum field")
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return rec, fmt.Errorf("checksum mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("bad record json: %v", err)
	}
	return rec, nil
}

// applyWALRecord replays one record through the normal mutation paths.
func (db *Database) applyWALRecord(rec walRecord) error {
	switch rec.Kind {
	case "class":
		if rec.Class == nil {
			return fmt.Errorf("class record without class")
		}
		c, err := decodeClass(*rec.Class)
		if err != nil {
			return err
		}
		return db.DefineClass(c)
	case "clock":
		if rec.Now == nil {
			return fmt.Errorf("clock record without tick")
		}
		if *rec.Now < db.Now() {
			return fmt.Errorf("clock record runs backwards (%d < %d)", *rec.Now, db.Now())
		}
		db.Advance(*rec.Now - db.Now())
		return nil
	case "update":
		u := rec.Update
		if u == nil {
			return fmt.Errorf("update record without update")
		}
		switch u.Kind {
		case UpdateInsert:
			if u.After == nil {
				return fmt.Errorf("insert of %s without post-image", u.Object)
			}
			o, err := decodeObject(db, *u.After)
			if err != nil {
				return err
			}
			return db.insert(o, rec.Prov)
		case UpdateDelete:
			return db.delete(ObjectID(u.Object), rec.Prov)
		case UpdateStatic, UpdateDynamic:
			if u.After == nil {
				return fmt.Errorf("update of %s without post-image", u.Object)
			}
			o, err := decodeObject(db, *u.After)
			if err != nil {
				return err
			}
			// Install the recorded post-image wholesale: replay reproduces
			// the exact revision the original mutation computed.
			return db.mutate(ObjectID(u.Object), u.Kind, u.Attr, rec.Prov, func(*Object, temporal.Tick) (*Object, error) {
				return o, nil
			})
		default:
			return fmt.Errorf("unknown update kind %d", u.Kind)
		}
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
}
