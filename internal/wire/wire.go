// Package wire is the MOST client/server wire protocol: a length-prefixed,
// versioned frame codec carrying typed JSON payloads.  One frame is
//
//	magic   2 bytes  'M' 'W'
//	version 1 byte   ProtocolVersion
//	opcode  1 byte   Opcode
//	id      8 bytes  big-endian request ID (0 on unsolicited pushes)
//	length  4 bytes  big-endian payload length
//	payload length bytes of JSON
//
// Requests carry a per-connection-unique ID; every response echoes the ID
// of the request it answers, so a client may pipeline any number of
// requests on one connection and match answers as they return.  Server
// pushes (OpNotify, OpSubClosed) carry ID 0 and are routed by the
// subscription ID inside the payload.
//
// The decoder is hostile-input safe: it validates the magic, version, and
// payload bound before allocating, allocates at most MaxPayload bytes per
// frame, and returns errors — it never panics on malformed, truncated, or
// oversized input (FuzzWireDecode locks this in).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ProtocolVersion is the wire protocol version this package speaks.  A
// frame with any other version is rejected by the decoder.
const ProtocolVersion = 1

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 16

// DefaultMaxPayload bounds a frame's payload unless the decoder is
// configured otherwise.  Snapshots are the largest legitimate payloads.
const DefaultMaxPayload = 64 << 20

// magic identifies a MOST wire frame.
var magic = [2]byte{'M', 'W'}

// Opcode discriminates frame payloads.
type Opcode uint8

// Request opcodes (client to server).
const (
	OpHello        Opcode = 1  // HelloReq: session setup, client identity
	OpPing         Opcode = 2  // empty: liveness probe
	OpQuery        Opcode = 3  // QueryReq: instantaneous FTL query
	OpUpdateBatch  Opcode = 4  // UpdateBatchReq: batched explicit updates
	OpAdvance      Opcode = 5  // AdvanceReq: advance the clock
	OpObjects      Opcode = 6  // ObjectsReq: list objects with positions
	OpSnapshotSave Opcode = 7  // empty: serialize the database state
	OpSnapshotLoad Opcode = 8  // SnapshotLoadReq: replace the database state
	OpSubscribe    Opcode = 9  // SubscribeReq: register a continuous query
	OpUnsubscribe  Opcode = 10 // UnsubscribeReq: cancel a subscription
)

// Response and push opcodes (server to client).
const (
	OpResult    Opcode = 32 // payload depends on the request opcode
	OpError     Opcode = 33 // ErrorResp
	OpNotify    Opcode = 34 // Notify: new Answer(CQ) after maintenance (push)
	OpSubClosed Opcode = 35 // SubClosed: server-side subscription teardown (push)
)

// String names the opcode for metrics and errors.
func (o Opcode) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpPing:
		return "ping"
	case OpQuery:
		return "query"
	case OpUpdateBatch:
		return "update_batch"
	case OpAdvance:
		return "advance"
	case OpObjects:
		return "objects"
	case OpSnapshotSave:
		return "snapshot_save"
	case OpSnapshotLoad:
		return "snapshot_load"
	case OpSubscribe:
		return "subscribe"
	case OpUnsubscribe:
		return "unsubscribe"
	case OpResult:
		return "result"
	case OpError:
		return "error"
	case OpNotify:
		return "notify"
	case OpSubClosed:
		return "sub_closed"
	default:
		return fmt.Sprintf("opcode(%d)", uint8(o))
	}
}

// valid reports whether the opcode is one this protocol version defines.
func (o Opcode) valid() bool {
	return (o >= OpHello && o <= OpUnsubscribe) || (o >= OpResult && o <= OpSubClosed)
}

// Frame is one decoded protocol frame.
type Frame struct {
	Op      Opcode
	ID      uint64
	Payload []byte
}

// Decode errors.  ErrTooLarge and ErrBadFrame mark input that must not be
// retried verbatim; io errors pass through unwrapped so callers can detect
// EOF and timeouts.
var (
	ErrBadFrame = errors.New("wire: malformed frame")
	ErrTooLarge = errors.New("wire: frame exceeds payload bound")
)

// AppendFrame serializes the frame onto buf and returns the extended
// slice.  It refuses payloads beyond the uint32 range.
func AppendFrame(buf []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > int(^uint32(0)) {
		return nil, ErrTooLarge
	}
	var hdr [HeaderSize]byte
	hdr[0], hdr[1] = magic[0], magic[1]
	hdr[2] = ProtocolVersion
	hdr[3] = byte(f.Op)
	binary.BigEndian.PutUint64(hdr[4:12], f.ID)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, f.Payload...), nil
}

// WriteFrame serializes the frame to w in one Write call, so concurrent
// writers interleave only at frame granularity when w serializes writes.
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Encode marshals payload as JSON into a frame.  A nil payload produces an
// empty frame body.
func Encode(op Opcode, id uint64, payload any) (Frame, error) {
	f := Frame{Op: op, ID: id}
	if payload != nil {
		data, err := json.Marshal(payload)
		if err != nil {
			return Frame{}, fmt.Errorf("wire: encode %s: %w", op, err)
		}
		f.Payload = data
	}
	return f, nil
}

// Decoder reads frames from a stream with a hard payload bound.
type Decoder struct {
	r   io.Reader
	max uint32
}

// NewDecoder returns a decoder over r.  maxPayload bounds per-frame
// allocation; values <= 0 select DefaultMaxPayload.
func NewDecoder(r io.Reader, maxPayload int) *Decoder {
	max := uint32(DefaultMaxPayload)
	if maxPayload > 0 && maxPayload <= int(^uint32(0)) {
		max = uint32(maxPayload)
	}
	return &Decoder{r: r, max: max}
}

// Next reads one frame.  The header is fully validated before the payload
// is allocated, so a hostile length field costs at most max bytes; any
// violation returns an error wrapping ErrBadFrame or ErrTooLarge.  A clean
// EOF at a frame boundary returns io.EOF; EOF inside a frame returns
// io.ErrUnexpectedEOF.
func (d *Decoder) Next() (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(d.r, hdr[:1]); err != nil {
		return Frame{}, err
	}
	if _, err := io.ReadFull(d.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] {
		return Frame{}, fmt.Errorf("%w: bad magic %q", ErrBadFrame, hdr[:2])
	}
	if hdr[2] != ProtocolVersion {
		return Frame{}, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, hdr[2])
	}
	op := Opcode(hdr[3])
	if !op.valid() {
		return Frame{}, fmt.Errorf("%w: unknown opcode %d", ErrBadFrame, hdr[3])
	}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > d.max {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, d.max)
	}
	f := Frame{Op: op, ID: binary.BigEndian.Uint64(hdr[4:12])}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(d.r, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
	}
	return f, nil
}

// Unmarshal decodes a frame payload into v with unknown fields tolerated
// (forward compatibility within a protocol version).
func Unmarshal(f Frame, v any) error {
	if len(f.Payload) == 0 {
		return nil
	}
	if err := json.Unmarshal(f.Payload, v); err != nil {
		return fmt.Errorf("%w: %s payload: %v", ErrBadFrame, f.Op, err)
	}
	return nil
}
