// mostbench regenerates every experiment table (E1..E13): the paper's
// quantitative claims, measured on this implementation.  See DESIGN.md for
// the experiment index and EXPERIMENTS.md for claim-versus-measured.
//
// Usage:
//
//	mostbench [-quick] [-only E3,E7] [-parallel] [-faults]
//
// With -parallel it instead runs the parallel-evaluation benchmark
// (sequential vs worker-pool at 1k/10k/100k objects) and writes the
// machine-readable results to BENCH_parallel.json.  With -faults it runs
// the fault-tolerance sweep (loss × partition × crashes; legacy vs reliable
// delivery, staleness marking, WAL recovery) and writes BENCH_faults.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/mostdb/most/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for a fast run")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E3,E7); empty runs all")
	parallel := flag.Bool("parallel", false, "benchmark parallel vs sequential evaluation and write BENCH_parallel.json")
	faultsSweep := flag.Bool("faults", false, "run the fault-tolerance sweep and write BENCH_faults.json")
	flag.Parse()

	if *faultsSweep {
		rep := experiments.FaultsBench(*quick)
		fmt.Println(rep.Table().Render())
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_faults.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_faults.json")
		return
	}

	if *parallel {
		rep := experiments.ParallelBench(*quick)
		fmt.Println(rep.Table().Render())
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_parallel.json")
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ran := 0
	for _, tbl := range experiments.All(*quick) {
		if len(want) > 0 && !want[tbl.ID] {
			continue
		}
		fmt.Println(tbl.Render())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "mostbench: no experiment matches %q\n", *only)
		os.Exit(1)
	}
}
