// Package temporal implements the discrete time model of the MOST paper
// (Sistla, Wolfson, Chamberlain, Dao; ICDE 1997) and the interval algebra
// its FTL query-processing algorithm (appendix) is built on.
//
// Time is a global discrete clock: the special database object "time" has
// the natural numbers as its domain and increases by one on each clock tick
// (paper §2).  A database history associates one database state with each
// tick (§2.2).  FTL formulas are answered with sets of (instantiation,
// interval) tuples whose interval sets are disjoint and non-consecutive —
// the normalization invariant the appendix relies on.
package temporal

import "math"

// Tick is one instant of the global discrete clock.  The paper's domain is
// the natural numbers; we use a signed 64-bit carrier so interval arithmetic
// (shifting by Nexttime, widening by bounded operators) cannot overflow for
// any realistic horizon.
type Tick int64

// Sentinel ticks.  They are kept well inside the int64 range so that
// shifting an interval endpoint by a query constant can never wrap around.
const (
	// MinTick is the smallest representable tick.
	MinTick Tick = math.MinInt64 / 4
	// MaxTick is the largest representable tick.  An interval ending at
	// MaxTick is treated as unbounded ("until the query expires").
	MaxTick Tick = math.MaxInt64 / 4
)

// clampTick keeps arithmetic results inside [MinTick, MaxTick].
func clampTick(t Tick) Tick {
	if t < MinTick {
		return MinTick
	}
	if t > MaxTick {
		return MaxTick
	}
	return t
}

// Add returns t+d saturated to the representable tick range.
func (t Tick) Add(d Tick) Tick { return clampTick(t + d) }

// Sub returns t-d saturated to the representable tick range.
func (t Tick) Sub(d Tick) Tick { return clampTick(t - d) }

// FloorTick converts a real-valued time (e.g. the root of a kinetic
// quadratic) to the last tick at or before it.
func FloorTick(x float64) Tick {
	if x <= float64(MinTick) {
		return MinTick
	}
	if x >= float64(MaxTick) {
		return MaxTick
	}
	return Tick(math.Floor(x))
}

// CeilTick converts a real-valued time to the first tick at or after it.
func CeilTick(x float64) Tick {
	if x <= float64(MinTick) {
		return MinTick
	}
	if x >= float64(MaxTick) {
		return MaxTick
	}
	return Tick(math.Ceil(x))
}
