// Package most implements the Moving Objects Spatio-Temporal data model of
// the paper (§2): a database is a set of object-classes; a special object
// "time" gives the current time; attributes are static or dynamic; spatial
// object classes carry X/Y/Z.POSITION dynamic attributes and spatial
// methods (INSIDE, OUTSIDE, DIST, WITHIN-A-SPHERE).
//
// Objects are immutable values: every explicit update produces a new
// revision that replaces the old one in the database, and the update is
// recorded in the database's history log (the information persistent
// queries need, §2.3).  Readers therefore always observe a consistent
// object state without holding locks during evaluation.
package most

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates static attribute values.
type ValueKind uint8

// Static value kinds.
const (
	KindNull ValueKind = iota
	KindFloat
	KindString
	KindBool
)

// Value is a static attribute value: a tagged union of float64, string and
// bool.  The zero Value is NULL.  Value is comparable and usable as a map
// key.
type Value struct {
	Kind ValueKind
	F    float64
	S    string
	B    bool
}

// Float wraps a float64.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Int wraps an integer as a float value (the model's numeric domain).
func Int(i int64) Value { return Value{Kind: KindFloat, F: float64(i)} }

// Str wraps a string.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Null is the NULL value.
func Null() Value { return Value{} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat returns the numeric content, and whether the value is numeric.
func (v Value) AsFloat() (float64, bool) { return v.F, v.Kind == KindFloat }

// Compare orders two values of the same kind: -1, 0, +1.  Values of
// different kinds compare by kind (NULL < float < string < bool).
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KindFloat:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
	case KindString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
	case KindBool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		}
	}
	return 0
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		return strconv.FormatBool(v.B)
	default:
		return "NULL"
	}
}

// GoString aids debugging output in tests.
func (v Value) GoString() string { return fmt.Sprintf("most.Value(%s)", v.String()) }
