# Development gates.  `make check` is the tier-1 verification the CI and
# every PR must keep green; `make race` runs the concurrency regression
# tests under the race detector.

GO ?= go

.PHONY: check fmt vet build test race bench parallel faults fuzzwal

check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Sequential-vs-parallel evaluation sweep; writes BENCH_parallel.json.
parallel:
	$(GO) run ./cmd/mostbench -parallel

# Fault-tolerance sweep (loss x partition x crashes; legacy vs reliable
# delivery, staleness marking, WAL recovery); writes BENCH_faults.json.
faults:
	$(GO) run ./cmd/mostbench -faults -quick

# Fuzz the WAL replay path: corrupted/truncated logs must fail safe with a
# partial-recovery report, never a panic.
fuzzwal:
	$(GO) test ./internal/most -run='^$$' -fuzz=FuzzWALReplay -fuzztime=10s
