package experiments

import (
	"runtime"
	"time"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/workload"
)

// ParallelResult is one row of the parallel-evaluation benchmark: the same
// instantaneous query over an n-vehicle fleet, evaluated sequentially and
// on the worker pool.
type ParallelResult struct {
	Objects      int     `json:"objects"`
	Workers      int     `json:"workers"`
	SequentialNs int64   `json:"sequential_ns"`
	ParallelNs   int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
}

// ParallelReport is the payload mostbench -parallel writes to
// BENCH_parallel.json.
type ParallelReport struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	Results    []ParallelResult `json:"results"`
}

// ParallelBench times sequential versus pooled evaluation of one RETRIEVE
// over fleets of growing size.  The answers are identical by construction
// (the pool merges in deterministic instantiation order); only wall-clock
// time differs, and only when GOMAXPROCS > 1.
func ParallelBench(quick bool) *ParallelReport {
	sizes := []int{1000, 10000, 100000}
	reps := 3
	if quick {
		sizes = []int{1000, 10000}
		reps = 1
	}
	rep := &ParallelReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, n := range sizes {
		db, err := workload.Fleet(workload.FleetSpec{
			N:        n,
			Region:   geom.Rect{Max: geom.Point{X: 1000, Y: 1000}},
			MaxSpeed: 3,
			Seed:     7,
		})
		if err != nil {
			panic(err)
		}
		e := newEngine(db)
		q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`)
		opts := query.Options{
			Horizon: 200,
			Regions: map[string]geom.Polygon{"P": geom.RectPolygon(200, 200, 600, 600)},
		}
		run := func(parallelism int) time.Duration {
			o := opts
			o.Parallelism = parallelism
			return timeIt(reps, func() {
				if _, err := e.InstantaneousRelation(q, o); err != nil {
					panic(err)
				}
			})
		}
		seq := run(1)
		par := run(-1)
		rep.Results = append(rep.Results, ParallelResult{
			Objects:      n,
			Workers:      rep.GOMAXPROCS,
			SequentialNs: seq.Nanoseconds(),
			ParallelNs:   par.Nanoseconds(),
			Speedup:      float64(seq) / float64(par),
		})
	}
	return rep
}

// Table renders the report in the experiment-table format.
func (r *ParallelReport) Table() *Table {
	t := &Table{
		ID:      "PAR",
		Title:   "parallel query evaluation (worker pool vs sequential)",
		Claim:   "per-object evaluation is embarrassingly parallel; the pooled evaluator returns the identical relation faster when GOMAXPROCS > 1",
		Columns: []string{"objects", "workers", "sequential", "parallel", "speedup"},
	}
	for _, res := range r.Results {
		t.AddRow(
			itoa(res.Objects),
			itoa(res.Workers),
			ns(time.Duration(res.SequentialNs)),
			ns(time.Duration(res.ParallelNs)),
			f2(res.Speedup)+"x",
		)
	}
	if r.GOMAXPROCS == 1 {
		t.Notes = append(t.Notes, "GOMAXPROCS=1: the pool degenerates to the sequential path; run on a multi-core host to see speedup")
	}
	return t
}
