// mostbench regenerates every experiment table (E1..E12): the paper's
// quantitative claims, measured on this implementation.  See DESIGN.md for
// the experiment index and EXPERIMENTS.md for claim-versus-measured.
//
// Usage:
//
//	mostbench [-quick] [-only E3,E7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/mostdb/most/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for a fast run")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E3,E7); empty runs all")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ran := 0
	for _, tbl := range experiments.All(*quick) {
		if len(want) > 0 && !want[tbl.ID] {
			continue
		}
		fmt.Println(tbl.Render())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "mostbench: no experiment matches %q\n", *only)
		os.Exit(1)
	}
}
