package most

import (
	"bytes"
	"testing"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/motion"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL replay path: corrupted or
// truncated logs must fail safe — a partial-recovery report, never a panic
// — and replay must be deterministic (same bytes, same recovered state).
func FuzzWALReplay(f *testing.F) {
	// Seed with a real log, its torn prefix, and assorted near-miss frames.
	var buf bytes.Buffer
	db := NewDatabase()
	c := MustClass("Vehicles", true, AttrDef{Name: "PRICE", Kind: Static})
	if err := db.AttachWAL(NewWAL(&buf)); err != nil {
		f.Fatal(err)
	}
	if err := db.DefineClass(c); err != nil {
		f.Fatal(err)
	}
	o, _ := NewObject("v1", c)
	o, _ = o.WithPosition(motion.MovingFrom(geom.Point{X: 1}, geom.Vector{Y: 2}, db.Now()))
	if err := db.Insert(o); err != nil {
		f.Fatal(err)
	}
	db.Advance(5)
	if err := db.SetMotion("v1", geom.Vector{X: 3}); err != nil {
		f.Fatal(err)
	}
	real := buf.Bytes()
	f.Add(real)
	f.Add(real[:len(real)/2])
	f.Add([]byte(""))
	f.Add([]byte("deadbeef {\"seq\":1,\"kind\":\"clock\",\"now\":3}\n"))
	f.Add([]byte("00000000 {}\n"))
	f.Add([]byte("zzzzzzzz not even a frame\n"))
	f.Add(bytes.Replace(real, []byte("update"), []byte("upd\x00te"), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		db1, rep1, err := Recover(nil, data)
		if err != nil {
			t.Fatalf("Recover must not error on WAL damage: %v", err)
		}
		if db1 == nil || rep1 == nil {
			t.Fatal("Recover must always return a database and a report")
		}
		s1, err := db1.SnapshotJSON()
		if err != nil {
			t.Fatalf("recovered database cannot snapshot: %v", err)
		}
		db2, rep2, _ := Recover(nil, data)
		s2, _ := db2.SnapshotJSON()
		if !bytes.Equal(s1, s2) || rep1.Records != rep2.Records || rep1.Truncated != rep2.Truncated {
			t.Fatal("replay is not deterministic")
		}
	})
}
