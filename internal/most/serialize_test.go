package most

import (
	"strings"
	"testing"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db, c := newTestDB(t)
	plain := MustClass("Plain", false,
		AttrDef{Name: "NAME", Kind: Static},
		AttrDef{Name: "TEMP", Kind: Dynamic},
	)
	if err := db.DefineClass(plain); err != nil {
		t.Fatal(err)
	}
	insertCar(t, db, c, "car", geom.Point{X: 3, Y: 4}, geom.Vector{X: 1, Y: -2})
	if err := db.SetStatic("car", "PRICE", Float(120)); err != nil {
		t.Fatal(err)
	}
	p, _ := NewObject("sensor", plain)
	p, _ = p.WithStatic("NAME", Str("roof"))
	p, _ = p.WithDynamic("TEMP", motion.DynamicAttr{
		Value: 20, UpdateTime: 0,
		Function: motion.MustFunc(motion.Piece{Start: 0, Slope: 0.5}, motion.Piece{Start: 10, Slope: -0.25}),
	})
	if err := db.Insert(p); err != nil {
		t.Fatal(err)
	}
	db.Advance(7)

	data, err := db.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "X.POSITION") {
		t.Fatal("snapshot missing dynamic attributes")
	}
	db2, err := LoadSnapshotJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Now() != 7 {
		t.Fatalf("restored clock = %d", db2.Now())
	}
	if db2.Count() != 2 {
		t.Fatalf("restored objects = %d", db2.Count())
	}
	// All values agree at several future instants.
	for _, id := range []ObjectID{"car", "sensor"} {
		o1, _ := db.Get(id)
		o2, ok := db2.Get(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		for _, attr := range o1.AttrNames() {
			for _, tick := range []temporal.Tick{7, 20, 100} {
				v1, err1 := o1.ValueAt(attr, tick)
				v2, err2 := o2.ValueAt(attr, tick)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s.%s: %v %v", id, attr, err1, err2)
				}
				if v1 != v2 {
					t.Fatalf("%s.%s at %d: %v vs %v", id, attr, tick, v1, v2)
				}
			}
		}
	}
	// Double round-trip is stable.
	data2, err := db2.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("snapshot not stable under round trip")
	}
}

func TestLoadSnapshotErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`{"classes":[{"name":""}]}`,
		`{"objects":[{"id":"x","class":"missing"}]}`,
		`{"classes":[{"name":"C"}],"objects":[{"id":"x","class":"C","statics":{"A":{"kind":"float"}}}]}`,
		`{"classes":[{"name":"C","attrs":[{"name":"A","dynamic":true}]}],"objects":[{"id":"x","class":"C","dynamics":{"A":{"function":"bogus"}}}]}`,
		`{"classes":[{"name":"C"}],"objects":[{"id":"x","class":"C","statics":{"A":{"kind":"alien"}}}]}`,
	}
	for _, src := range bad {
		if _, err := LoadSnapshotJSON([]byte(src)); err == nil {
			t.Errorf("LoadSnapshotJSON(%q) should fail", src)
		}
	}
}
