package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// E12HorizonChoice explores §4's open question: "the index needs to be
// reconstructed every T time units.  Choosing an appropriate value for T
// is an important future-research question."  With the strip width held
// fixed, a larger T means proportionally more rectangles per object: the
// experiment measures, per choice of T over a fixed operating period, the
// rebuild cost and its amortization, the probe cost, and the reach of
// continuous queries (a continuous query is only answerable to the end of
// the indexed window).
func E12HorizonChoice(quick bool) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "index horizon T: rebuild cost vs probe cost vs continuous reach (§4 future work)",
		Claim:   "rebuild cost grows with T but amortizes over proportionally more ticks; probe cost grows mildly; small T truncates continuous answers — T should match the query horizon",
		Columns: []string{"objects", "T", "entries", "rebuilds/period", "rebuild cost", "amortized/tick", "instant probe", "continuous reach"},
	}
	n := 10000
	reps := 50
	if quick {
		n = 3000
		reps = 20
	}
	const period = temporal.Tick(4000) // operating period to amortize over
	const stripWidth = 16.0
	r := rand.New(rand.NewSource(5))
	attrs := make(map[most.ObjectID]motion.DynamicAttr, n)
	for i := 0; i < n; i++ {
		id := most.ObjectID(fmt.Sprintf("o%06d", i))
		attrs[id] = motion.DynamicAttr{
			Value:    r.Float64()*2000 - 1000,
			Function: motion.Linear(r.Float64()*6 - 3),
		}
	}
	for _, T := range []temporal.Tick{250, 1000, 4000} {
		ix := index.NewAttrIndexSlice(0, T, stripWidth)
		rebuild := timeIt(3, func() { ix.Rebuild(0, attrs) })
		rebuilds := int(period / T)
		amortized := time.Duration(float64(rebuild) * float64(rebuilds) / float64(period))
		probe := timeIt(reps, func() { ix.InstantQuery(100, 104, T/2) })
		reach := ix.End()
		entries := 0
		for range attrs {
			entries += int(float64(T) / stripWidth)
		}
		t.AddRow(itoa(n), itoa(int(T)), itoa(entries), itoa(rebuilds),
			ns(rebuild), ns(amortized), ns(probe), itoa(int(reach)))
	}
	t.Notes = append(t.Notes,
		"strip width fixed at 16 ticks, so entries scale linearly with T",
		"a continuous query entered at time 0 can only be answered to tick T; T below the query horizon forces re-probing after every rebuild")
	return t
}
