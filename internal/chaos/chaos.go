// Package chaos is a deterministic end-to-end fault harness for the MOST
// network service: it drives a fleet of live clients against a durable
// server (internal/server.NewDurable) while killing the server process
// state (Abort — the in-process kill -9), severing client connections, and
// partitioning clients behind a closable dialer gate, then proves that
// none of it was observable beyond latency:
//
//   - Committed state is bit-identical to a differential oracle — an
//     in-process most.Database that applied exactly the acknowledged
//     operations — via SnapshotJSON comparison.
//   - Mutations apply exactly once across crash/retry races (the database
//     version, which counts every mutation, matches the oracle's when no
//     checkpoint reset it).
//   - Subscription notification streams are gap-free and duplicate-free
//     across server restarts and reconnects: sequence numbers only
//     increase, consecutive deliveries always differ, and every stream
//     converges to the server's ground-truth answer.
//
// Determinism comes from structure, not timing: every client owns a
// disjoint set of objects, mutation values are pure functions of
// (phase, batch, object), and clock advances happen only at phase
// barriers — so whatever interleaving the scheduler or a mid-phase crash
// produces, the committed state after each phase is a single well-defined
// database.  Scenarios are seeded (workload, backoff jitter) so repeated
// runs exercise the same schedules.
package chaos

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/server"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
	"github.com/mostdb/most/internal/workload"
)

// Gate is a closable dialer: a network partition between one client and
// the server.  Sever fails new dials and kills every live connection the
// gate has made; Heal lets traffic through again.  Wrap it around a
// client with client.WithDialer(gate.Dial).
type Gate struct {
	mu      sync.Mutex
	severed bool
	conns   []net.Conn
}

// ErrPartitioned is returned by a severed Gate's Dial.
var ErrPartitioned = errors.New("chaos: partitioned")

// Dial connects unless the gate is severed, tracking the connection so a
// later Sever can kill it mid-stream.
func (g *Gate) Dial(addr string) (net.Conn, error) {
	g.mu.Lock()
	severed := g.severed
	g.mu.Unlock()
	if severed {
		return nil, ErrPartitioned
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	if g.severed {
		g.mu.Unlock()
		conn.Close()
		return nil, ErrPartitioned
	}
	g.conns = append(g.conns, conn)
	g.mu.Unlock()
	return conn, nil
}

// Sever partitions the gate: live connections die, new dials fail.
func (g *Gate) Sever() {
	g.mu.Lock()
	g.severed = true
	conns := g.conns
	g.conns = nil
	g.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Heal reopens the gate.
func (g *Gate) Heal() {
	g.mu.Lock()
	g.severed = false
	g.mu.Unlock()
}

// Config parameterizes a harness run.  The zero value is not usable; see
// DefaultConfig.
type Config struct {
	Dir               string // durable data directory (wal.log, checkpoint.json, dedup.json)
	Seed              int64  // workload + jitter seed; same seed, same schedule
	Clients           int    // live clients, each owning a disjoint vehicle range
	VehiclesPerClient int
	Batches           int // update batches per client per phase
	CheckpointEvery   int // server auto-checkpoint period (0 = crash recovery replays the full log)
	MaxInflight       int // server admission cap (0 = unbounded)
}

// DefaultConfig is a small fleet that still exercises every code path:
// concurrent committers, streaming subscribers, and a WAL with enough
// records that replay is observable.
func DefaultConfig(dir string, seed int64) Config {
	return Config{
		Dir:               dir,
		Seed:              seed,
		Clients:           4,
		VehiclesPerClient: 8,
		Batches:           3,
	}
}

// subSrc is the continuous query every client subscribes to — a bounded
// Eventually, so the engine maintains it incrementally and motion updates
// change its answer.
const subSrc = `RETRIEVE o FROM Vehicles o WHERE Eventually WITHIN 30 INSIDE(o, P)`

const subHorizon = temporal.Tick(50)

// Result is what a scenario measured, for the chaos benchmark.
type Result struct {
	Recoveries []time.Duration // WAL replay + rebuild time, one per restart
	Failovers  []time.Duration // kill → first recommitted mutation, one per client per restart
	Reconnects int64           // successful client reconnects (client.reconnects)
	ResumeRows int64           // answer rows delivered by resume reconciliation
}

// Harness runs one scenario: a durable server, its client fleet, the
// differential oracle, and the per-subscription stream watchers.
type Harness struct {
	cfg    Config
	reg    *obs.Registry
	oracle *most.Database
	phase  int
	probes int

	srv  *server.Server
	addr string

	clients  []*client.Client
	gates    []*Gate
	watchers []*watcher

	res Result
}

// New builds the oracle and the durable server, starts serving, connects
// the client fleet, and registers one subscription per client.
func New(cfg Config) (*Harness, error) {
	h := &Harness{cfg: cfg, reg: obs.New()}
	oracle, err := h.world()
	if err != nil {
		return nil, err
	}
	h.oracle = oracle
	if err := h.startServer(""); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Clients; i++ {
		gate := &Gate{}
		c, err := client.Dial(h.addr,
			client.WithClientID(fmt.Sprintf("chaos-%d", i)),
			client.WithDialer(gate.Dial),
			client.WithRetries(10000),
			client.WithTimeout(10*time.Second),
			client.WithBackoff(2*time.Millisecond, 100*time.Millisecond),
			client.WithJitterSeed(cfg.Seed*1000+int64(i)),
			client.WithObs(h.reg),
		)
		if err != nil {
			h.Close()
			return nil, err
		}
		h.clients = append(h.clients, c)
		h.gates = append(h.gates, gate)
		sub, err := c.Subscribe(subSrc, subHorizon)
		if err != nil {
			h.Close()
			return nil, err
		}
		h.watchers = append(h.watchers, watch(sub))
	}
	return h, nil
}

// world builds the deterministic seed fleet — used identically for the
// server's fresh-start seed and for the oracle.  The last cfg.Clients
// vehicles are the failover-probe targets, disjoint from phase traffic so
// probes commute with in-flight batches.
func (h *Harness) world() (*most.Database, error) {
	return workload.Fleet(workload.FleetSpec{
		N:        h.cfg.Clients*h.cfg.VehiclesPerClient + h.cfg.Clients,
		Region:   geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 1000, Y: 1000}},
		MaxSpeed: 3,
		Seed:     h.cfg.Seed,
	})
}

func (h *Harness) serverConfig() server.Config {
	return server.Config{
		Reg:             h.reg,
		Name:            "chaos",
		MaxInflight:     h.cfg.MaxInflight,
		CheckpointEvery: h.cfg.CheckpointEvery,
		BaseOptions: query.Options{
			Horizon: subHorizon,
			Regions: map[string]geom.Polygon{"P": geom.RectPolygon(100, 100, 300, 300)},
		},
	}
}

// startServer recovers (or seeds) the durable server from cfg.Dir and
// serves on addr ("" = a fresh ephemeral port, otherwise the previous
// address so clients reconnect transparently).
func (h *Harness) startServer(addr string) error {
	srv, info, err := server.NewDurable(h.cfg.Dir, h.serverConfig(), func() *most.Database {
		db, err := h.world()
		if err != nil {
			panic(err)
		}
		return db
	})
	if err != nil {
		return fmt.Errorf("chaos: recovery: %w", err)
	}
	if !info.Fresh {
		h.res.Recoveries = append(h.res.Recoveries, info.Elapsed)
	}
	// Rebinding the address a killed server just held can race the
	// kernel's release of the port; retry briefly.
	var ln net.Listener
	bind := addr
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", bind)
		if err == nil {
			break
		}
		if i > 200 {
			return fmt.Errorf("chaos: rebind %s: %w", bind, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go srv.Serve(ln)
	h.srv = srv
	h.addr = ln.Addr().String()
	return nil
}

// Kill hard-stops the server as a crash would: no drain, no checkpoint,
// no goodbye to sessions.
func (h *Harness) Kill() {
	h.srv.Abort()
}

// Restart recovers the durable state and serves again on the same
// address, then measures per-client failover: the time until each client
// commits a mutation again (retries ride out the dead window).
func (h *Harness) Restart() error {
	if err := h.startServer(h.addr); err != nil {
		return err
	}
	n := h.probes
	h.probes++
	start := time.Now()
	lat := make([]time.Duration, len(h.clients))
	errs := make([]error, len(h.clients))
	var wg sync.WaitGroup
	for i, c := range h.clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			errs[i] = h.commit(c, h.probeOps(i, n))
			lat[i] = time.Since(start)
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("chaos: client %d failover: %w", i, err)
		}
		h.applyOracle(h.probeOps(i, n))
		h.res.Failovers = append(h.res.Failovers, lat[i])
	}
	return nil
}

// probeOps is the failover probe: one deterministic mutation per client
// on that client's dedicated probe vehicle (outside every phase range, so
// a probe commutes with whatever batches are still in flight).  n is the
// probe round, making successive probe values distinct.
func (h *Harness) probeOps(i, n int) []wire.UpdateOp {
	v := h.cfg.Clients*h.cfg.VehiclesPerClient + i
	return []wire.UpdateOp{{
		Op: wire.OpSetMotion,
		ID: vehicleID(v),
		VX: float64((n*17+i*5)%9) - 4,
		VY: float64((n*7+i*3)%9) - 4,
	}}
}

func vehicleID(v int) string { return fmt.Sprintf("car-%05d", v) }

// opsFor is the deterministic mutation schedule: client i's batch b in
// the current phase, one motion update per owned vehicle.  Values are
// pure functions of (phase, batch, vehicle), so the oracle can apply the
// identical operations.
func (h *Harness) opsFor(i, b int) []wire.UpdateOp {
	ops := make([]wire.UpdateOp, 0, h.cfg.VehiclesPerClient)
	for k := 0; k < h.cfg.VehiclesPerClient; k++ {
		v := i*h.cfg.VehiclesPerClient + k
		ops = append(ops, wire.UpdateOp{
			Op: wire.OpSetMotion,
			ID: vehicleID(v),
			VX: float64((h.phase*31+b*7+v)%11) - 5,
			VY: float64((h.phase*13+b*3+v*5)%11) - 5,
		})
	}
	return ops
}

// commit sends one batch on one client.  The client's own retry loop —
// one request ID, retransmitted under backoff — is the only retry: a
// second call would mint a new ID and could double-apply, so transport
// exhaustion is a harness failure, not something to paper over.
func (h *Harness) commit(c *client.Client, ops []wire.UpdateOp) error {
	resp, err := c.UpdateBatch(ops)
	if err != nil {
		return err
	}
	if resp.Applied != len(ops) {
		return fmt.Errorf("chaos: batch applied %d of %d ops", resp.Applied, len(ops))
	}
	return nil
}

func (h *Harness) applyOracle(ops []wire.UpdateOp) {
	for _, op := range ops {
		if err := h.oracle.SetMotion(most.ObjectID(op.ID), geom.Vector{X: op.VX, Y: op.VY}); err != nil {
			panic(fmt.Sprintf("chaos: oracle diverged: %v", err))
		}
	}
}

// RunPhase drives every client through its batches concurrently, then —
// at the barrier, with the server quiesced — applies the same operations
// to the oracle and advances both clocks one tick.  disrupt, if non-nil,
// runs concurrently with the traffic (kill the server, sever a gate, ...)
// and must leave the server reachable before it returns.
func (h *Harness) RunPhase(disrupt func() error) error {
	errs := make([]error, len(h.clients))
	var wg sync.WaitGroup
	for i, c := range h.clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			for b := 0; b < h.cfg.Batches; b++ {
				if err := h.commit(c, h.opsFor(i, b)); err != nil {
					errs[i] = fmt.Errorf("client %d batch %d: %w", i, b, err)
					return
				}
			}
		}(i, c)
	}
	var disruptErr error
	if disrupt != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			disruptErr = disrupt()
		}()
	}
	wg.Wait()
	if disruptErr != nil {
		return disruptErr
	}
	for i := range h.clients {
		if errs[i] != nil {
			return errs[i]
		}
		for b := 0; b < h.cfg.Batches; b++ {
			h.applyOracle(h.opsFor(i, b))
		}
	}
	// Barrier: all traffic acknowledged; advance both clocks in lockstep.
	now, err := h.clients[0].Advance(1)
	if err != nil {
		return fmt.Errorf("chaos: advance: %w", err)
	}
	if got := h.oracle.Advance(1); got != now {
		return fmt.Errorf("chaos: clock diverged: server %d, oracle %d", now, got)
	}
	h.phase++
	return nil
}

// Verify proves the run was invisible: server state bit-identical to the
// oracle, every subscription stream clean and converged to ground truth.
// checkVersion additionally asserts the mutation count matches — valid
// only when no checkpoint ran, since restoring from a checkpoint resets
// the version counter.
func (h *Harness) Verify(checkVersion bool) error {
	theirs, err := h.clients[0].SnapshotSave()
	if err != nil {
		return fmt.Errorf("chaos: snapshot: %w", err)
	}
	ours, err := h.oracle.SnapshotJSON()
	if err != nil {
		return err
	}
	if string(theirs) != string(ours) {
		return fmt.Errorf("chaos: committed state diverged from oracle (server %d bytes, oracle %d bytes)", len(theirs), len(ours))
	}
	if checkVersion {
		// One more probed mutation on each side exposes the version
		// counter: equal counts = every acknowledged mutation applied
		// exactly once, no duplicate slipped in through a crash retry.
		n := h.probes
		h.probes++
		resp, err := h.clients[0].UpdateBatch(h.probeOps(0, n))
		if err != nil {
			return err
		}
		h.applyOracle(h.probeOps(0, n))
		if want := h.oracle.Version(); resp.Version != want {
			return fmt.Errorf("chaos: exactly-once violated: server version %d, oracle %d", resp.Version, want)
		}
	}

	// Ground truth for the streams: the rows a fresh subscription's
	// initial answer presents at the current tick.
	truthSub, err := h.clients[0].Subscribe(subSrc, subHorizon)
	if err != nil {
		return fmt.Errorf("chaos: truth subscribe: %w", err)
	}
	defer truthSub.Close()
	truthAns, _, _ := truthSub.Answer()
	now := h.oracle.Now() // == server clock, proven by the snapshot check
	truth := canonicalRowsAt(truthAns, now)
	for i, w := range h.watchers {
		if err := w.verify(truth, now, 5*time.Second); err != nil {
			return fmt.Errorf("chaos: subscriber %d: %w", i, err)
		}
	}
	h.res.Reconnects = counterValue(h.reg, "client.reconnects")
	h.res.ResumeRows = counterValue(h.reg, "client.resume_gap_rows")
	return nil
}

// Result returns what the run measured so far.
func (h *Harness) Result() Result { return h.res }

// Checkpoint forces a durable checkpoint, as the auto-checkpoint cadence
// or an operator would.
func (h *Harness) Checkpoint() error { return h.srv.Checkpoint() }

// Gates exposes the per-client partition gates, in client order.
func (h *Harness) Gates() []*Gate { return h.gates }

// Shutdown drains the server cleanly (checkpointing durable state).
func (h *Harness) Shutdown(timeout time.Duration) error {
	return shutdownServer(h.srv, timeout)
}

// Close releases everything; safe after partial construction and after
// Kill.
func (h *Harness) Close() {
	for _, w := range h.watchers {
		w.stop()
	}
	for _, c := range h.clients {
		c.Close()
	}
	if h.srv != nil {
		h.srv.Abort()
	}
}

// Scrub removes the durable directory, for scenarios that restart from
// scratch.
func Scrub(dir string) error { return os.RemoveAll(dir) }
