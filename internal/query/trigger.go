package query

import (
	"sync"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/temporal"
)

// Trigger is a temporal trigger (§2.3): "such a trigger is simply one of
// these two types of queries [continuous or persistent], coupled with an
// action".  The action fires with the instantiations that newly satisfy
// the query, once per distinct instantiation per rising edge.
type Trigger struct {
	cq     *Continuous
	action func([]Row)

	mu    sync.Mutex
	armed map[string]bool
}

// NewTrigger couples a continuous query with an action.  After every
// maintenance reevaluation the engine checks which instantiations satisfy
// the query at the database's current time; newly-satisfying ones are
// reported to the action.  Poll must be called as the clock advances to
// fire edges caused purely by motion (no database update).
func (e *Engine) NewTrigger(q *ftl.Query, opts Options, action func([]Row)) (*Trigger, error) {
	cq, err := e.Continuous(q, opts)
	if err != nil {
		return nil, err
	}
	tr := &Trigger{cq: cq, action: action, armed: map[string]bool{}}
	if err := cq.Subscribe(func(*eval.Relation) { tr.Poll(e.db.Now()) }); err != nil {
		return nil, err
	}
	tr.Poll(e.db.Now())
	return tr, nil
}

// Poll fires the action for instantiations that satisfy the query at tick
// t and did not satisfy it at the previous poll.
func (tr *Trigger) Poll(t temporal.Tick) {
	rows, err := tr.cq.Current(t)
	if err != nil {
		return
	}
	tr.mu.Lock()
	next := map[string]bool{}
	var fresh []Row
	for _, r := range rows {
		key := rowKey(r)
		next[key] = true
		if !tr.armed[key] {
			fresh = append(fresh, r)
		}
	}
	tr.armed = next
	action := tr.action
	tr.mu.Unlock()
	if len(fresh) > 0 && action != nil {
		action(fresh)
	}
}

// Cancel disables the trigger and its underlying continuous query.
func (tr *Trigger) Cancel() { tr.cq.Cancel() }

func rowKey(r Row) string {
	s := ""
	for _, v := range r {
		s += v.String() + "\x00"
	}
	return s
}

// Parse parses a query string; re-exported so callers of this package need
// not import ftl directly.
func Parse(src string) (*ftl.Query, error) { return ftl.Parse(src) }
