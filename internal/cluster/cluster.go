package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/server"
)

// Config parameterizes a loopback cluster (Start).  Production
// deployments wire the same pieces by hand — cmd/mostserver's -zone and
// -peers flags run one Node per process; Start exists for tests,
// benchmarks, and the chaos harness, which want N nodes in one process.
type Config struct {
	Nodes        int       // node count (each serves on 127.0.0.1:0)
	GridX, GridY int       // zone grid tiling Bounds
	Bounds       geom.Rect // the plane the zones cover
	Replicated   []string  // classes kept in full on every node

	// Seed builds the full world; every node builds it identically and
	// prunes down to its shard, so class definitions (and replicated
	// objects) exist everywhere without a schema-transfer protocol.
	Seed func() (*most.Database, error)

	// Opts configures each node's query engine (horizon, regions).
	Opts query.Options

	// Durable, when set, runs every node on a write-ahead log under
	// Dir/node<i>, checkpointing every CheckpointEvery mutations.
	Durable         bool
	Dir             string
	CheckpointEvery int

	// Dial, when non-nil, carries the inter-node (peer) connections —
	// the chaos harness wraps it in partition gates.  Router connections
	// take their own dialer at NewRouter time.
	Dial func(addr string) (net.Conn, error)

	// PeerMaxPayload is the raised frame bound peer sessions negotiate
	// (0 = 64 MiB).  Handoff frames carry whole motion records and may
	// exceed the client-facing default.
	PeerMaxPayload int
}

// Cluster is a running set of nodes, one server each, sharing a static
// zone map.
type Cluster struct {
	cfg   Config
	zm    *ZoneMap
	addrs []string
	nodes []*Node
	srvs  []*server.Server
	boots int // restart counter, keeps per-boot peer identities distinct
}

// Start listens on every node's port first (so the zone map can name
// real addresses), builds and installs the map, seeds and prunes each
// node's shard, and only then begins serving.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if cfg.Seed == nil {
		return nil, fmt.Errorf("cluster: config needs a Seed world")
	}
	if cfg.PeerMaxPayload == 0 {
		cfg.PeerMaxPayload = 64 << 20
	}
	c := &Cluster{cfg: cfg}
	lns := make([]net.Listener, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		lns[i] = ln
		c.addrs = append(c.addrs, ln.Addr().String())
	}
	zm, err := NewGridMap(cfg.Bounds, cfg.GridX, cfg.GridY, c.addrs, cfg.Replicated)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.zm = zm
	for i := 0; i < cfg.Nodes; i++ {
		node, srv, err := c.startNode(i, true)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
		c.srvs = append(c.srvs, srv)
		go srv.Serve(lns[i])
	}
	return c, nil
}

// startNode builds node i: its hooks, server (durable or not), zone map
// installation, and — on a fresh database only — the bootstrap prune.
func (c *Cluster) startNode(i int, fresh bool) (*Node, *server.Server, error) {
	node := NewNode(fmt.Sprintf("b%d-%d", c.boots, i), c.cfg.Dial)
	scfg := server.Config{
		Name:            fmt.Sprintf("node%d", i),
		BaseOptions:     c.cfg.Opts,
		Cluster:         node,
		PeerMaxPayload:  c.cfg.PeerMaxPayload,
		CheckpointEvery: c.cfg.CheckpointEvery,
	}
	var srv *server.Server
	prune := true
	if c.cfg.Durable {
		s, info, err := server.NewDurable(c.nodeDir(i), scfg, func() *most.Database {
			db, err := c.cfg.Seed()
			if err != nil {
				panic(fmt.Sprintf("cluster: seed node %d: %v", i, err))
			}
			return db
		})
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		srv = s
		// A recovered shard is already pruned — and may legitimately hold
		// objects whose position has left its zones (handoffs interrupted
		// by the crash).  Those must transfer, not vanish: the first
		// rebalance barrier hands them off.
		prune = info.Fresh
	} else {
		db, err := c.cfg.Seed()
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: seed node %d: %w", i, err)
		}
		srv = server.New(db, query.NewEngine(db), scfg)
	}
	node.Bind(srv, c.addrs[i])
	node.Install(c.zm)
	if fresh && prune {
		if err := node.Prune(); err != nil {
			return nil, nil, err
		}
	} else if c.cfg.Durable && !prune {
		// Recovered shard: every out-of-zone object it still holds may
		// have been mid-handoff at the crash — freeze and re-offer them
		// instead of accepting writes on possibly-released copies.
		if _, err := node.Quarantine(); err != nil {
			return nil, nil, err
		}
	}
	return node, srv, nil
}

func (c *Cluster) nodeDir(i int) string {
	return filepath.Join(c.cfg.Dir, fmt.Sprintf("node%d", i))
}

// Addrs returns the node addresses in zone-map order.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Node returns node i's hook object (handoff counters, zone map).
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// ZoneMap returns the cluster's (static) zone map.
func (c *Cluster) ZoneMap() *ZoneMap { return c.zm }

// Router connects a new router to the cluster.  dial carries the
// client-side connections (nil = TCP).
func (c *Cluster) Router(dial func(addr string) (net.Conn, error)) (*Router, error) {
	c.boots++
	return NewRouter(c.addrs[0], fmt.Sprintf("r%d", c.boots), dial)
}

// Kill hard-stops node i as a crash would: no drain, no checkpoint.  Its
// peers' in-flight handoffs toward it ride their retry loops until
// Restart brings it back.
func (c *Cluster) Kill(i int) {
	c.srvs[i].Abort()
	c.nodes[i].closePeers()
}

// Restart recovers node i from its durable directory and serves again on
// the same address.  The node comes back with empty fences and
// tombstones — the crash-recovery argument in the package comment is
// exactly about healing that loss.
func (c *Cluster) Restart(i int) error {
	if !c.cfg.Durable {
		return fmt.Errorf("cluster: restart requires a durable cluster")
	}
	c.boots++
	node, srv, err := c.startNode(i, false)
	if err != nil {
		return err
	}
	node.Install(c.zm)
	// Rebinding the port a killed server just held can race the kernel's
	// release; retry briefly (same discipline as the chaos harness).
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", c.addrs[i])
		if err == nil {
			break
		}
		if attempt > 200 {
			return fmt.Errorf("cluster: rebind %s: %w", c.addrs[i], err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.nodes[i] = node
	c.srvs[i] = srv
	go srv.Serve(ln)
	return nil
}

// Checkpoint forces a durable checkpoint on every node.
func (c *Cluster) Checkpoint() error {
	for i, srv := range c.srvs {
		if err := srv.Checkpoint(); err != nil {
			return fmt.Errorf("cluster: checkpoint node %d: %w", i, err)
		}
	}
	return nil
}

// Close aborts every node and closes peer connections.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		if n != nil {
			n.closePeers()
		}
	}
	for _, s := range c.srvs {
		if s != nil {
			s.Abort()
		}
	}
}

// Scrub removes a durable cluster's data directory.
func Scrub(dir string) error { return os.RemoveAll(dir) }
