package mostdb_test

import (
	"fmt"

	mostdb "github.com/mostdb/most"
)

// Example shows the core MOST idea: insert a motion vector once, then
// query positions and futures at any time without further updates.
func Example() {
	db := mostdb.NewDatabase()
	vehicles, _ := mostdb.NewClass("Vehicles", true)
	if err := db.DefineClass(vehicles); err != nil {
		panic(err)
	}
	car, _ := mostdb.NewObject("car-1", vehicles)
	car, _ = car.WithPosition(mostdb.MovingFrom(mostdb.Point{X: 0}, mostdb.Vector{X: 2}, 0))
	if err := db.Insert(car); err != nil {
		panic(err)
	}

	for _, t := range []mostdb.Tick{0, 10} {
		p, _ := car.PositionAt(t)
		fmt.Printf("t=%d x=%.0f\n", t, p.X)
	}
	// Output:
	// t=0 x=0
	// t=10 x=20
}

// ExampleEngine_InstantaneousRelation evaluates a future query: when will
// the car be inside the region?
func ExampleEngine_InstantaneousRelation() {
	db := mostdb.NewDatabase()
	vehicles, _ := mostdb.NewClass("Vehicles", true)
	if err := db.DefineClass(vehicles); err != nil {
		panic(err)
	}
	car, _ := mostdb.NewObject("car-1", vehicles)
	car, _ = car.WithPosition(mostdb.MovingFrom(mostdb.Point{X: 0}, mostdb.Vector{X: 2}, 0))
	if err := db.Insert(car); err != nil {
		panic(err)
	}

	engine := mostdb.NewEngine(db)
	q := mostdb.MustParseQuery(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, downtown)`)
	rel, err := engine.InstantaneousRelation(q, mostdb.QueryOptions{
		Horizon: 100,
		Regions: map[string]mostdb.Polygon{"downtown": mostdb.RectPolygon(30, -10, 50, 10)},
	})
	if err != nil {
		panic(err)
	}
	for _, a := range rel.Answers() {
		fmt.Printf("%s inside during %s\n", a.Vals[0], a.Interval)
	}
	// Output:
	// car-1 inside during [15 25]
}

// ExampleAttrIndex answers a range query over many trajectories with one
// index probe.
func ExampleAttrIndex() {
	ix := mostdb.NewAttrIndex(0, 100)
	var rising, falling mostdb.DynamicAttr
	rising.Function = mostdb.Linear(1)
	falling.Value = 100
	falling.Function = mostdb.Linear(-1)
	if err := ix.Insert("up", rising); err != nil {
		panic(err)
	}
	if err := ix.Insert("down", falling); err != nil {
		panic(err)
	}
	fmt.Println(ix.InstantQuery(49, 51, 50))
	fmt.Println(ix.InstantQuery(79, 81, 80))
	// Output:
	// [down up]
	// [up]
}

// ExampleAccelerating shows the quadratic (nonlinear) extension.
func ExampleAccelerating() {
	var braking mostdb.DynamicAttr
	braking.Value = 0
	braking.Function = mostdb.Accelerating(20, -2) // speed 20, decelerating
	for _, t := range []mostdb.Tick{0, 5, 10} {
		fmt.Printf("t=%d v=%.0f speed=%.0f\n", t, braking.At(t), braking.SpeedAt(t))
	}
	// Output:
	// t=0 v=0 speed=20
	// t=5 v=75 speed=10
	// t=10 v=100 speed=0
}
