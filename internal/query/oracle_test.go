package query

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/workload"
)

// This file is the differential oracle locking in the incremental engine:
// a naive reference evaluator re-runs every registered query from scratch
// at every clock tick — fresh snapshot, sequential evaluation, no motion
// index, no normalization — and the test asserts the materialized answers
// the engine maintains under updates (Answer(CQ) reevaluation, persistent
// history replay, version-stamped installs) are identical, tick for tick,
// across seeded workloads.
//
// Window-alignment soundness: Answer(CQ) is anchored at the time of its
// last reevaluation, so exact equality with a from-scratch evaluation at
// Now=t is only guaranteed when a relevant update arrived at tick t.  The
// driver therefore issues at least one motion update every tick (the
// engine reevaluates synchronously before SetMotion returns).

// naiveEval evaluates q from scratch against the database's current state:
// the definitional "evaluate the whole query now" path with everything the
// engine adds (index pruning, parallelism, rewrite) switched off.
func naiveEval(t *testing.T, db *most.Database, q *ftl.Query, regions map[string]geom.Polygon, horizon temporal.Tick) *eval.Relation {
	t.Helper()
	ctx := &eval.Context{
		Now:     db.Now(),
		Horizon: horizon,
		Objects: db.Snapshot(),
		Regions: regions,
		Domains: map[string][]eval.Val{},
	}
	if err := ctx.BindDomains(q, eval.IDsOf(db)); err != nil {
		t.Fatalf("naive bind: %v", err)
	}
	rel, err := eval.EvalQuery(q, ctx)
	if err != nil {
		t.Fatalf("naive eval: %v", err)
	}
	return rel
}

// naivePersistent replays the logged history from anchor and evaluates q
// over it from scratch, mirroring the definitional persistent-query
// semantics (§2.3: a sequence of instantaneous queries on the history
// starting at the anchor).
func naivePersistent(t *testing.T, db *most.Database, q *ftl.Query, regions map[string]geom.Polygon, anchor, horizon temporal.Tick) []Row {
	t.Helper()
	objects := synthesizeHistory(db.History(), anchor, anchor.Add(horizon))
	ctx := &eval.Context{
		Now:     anchor,
		Horizon: horizon,
		Objects: objects,
		Regions: regions,
		Domains: map[string][]eval.Val{},
	}
	if err := ctx.BindDomains(q, eval.IDsOf(db)); err != nil {
		t.Fatalf("naive persistent bind: %v", err)
	}
	rel, err := eval.EvalQuery(q, ctx)
	if err != nil {
		t.Fatalf("naive persistent eval: %v", err)
	}
	var rows []Row
	for _, vals := range rel.At(anchor) {
		rows = append(rows, Row(vals))
	}
	return rows
}

// rowKeys renders rows as a sorted multiset of value strings so answer
// sets compare independently of presentation order.
func rowKeys(rows []Row) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		key := ""
		for i, v := range r {
			if i > 0 {
				key += "|"
			}
			key += v.String()
		}
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

func sameRows(a, b []Row) bool {
	ka, kb := rowKeys(a), rowKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// maintainIndex subscribes a listener keeping ix synchronized with db.
// Subscribed before the engine exists, so the index already reflects an
// update when the engine's synchronous reevaluation probes it.
func maintainIndex(db *most.Database, ix *index.MotionIndex) {
	db.Subscribe(func(u most.Update) {
		if u.After == nil {
			if u.Before != nil {
				ix.Remove(u.Before.ID())
			}
			return
		}
		pos, err := u.After.Position()
		if err != nil {
			return
		}
		id := u.After.ID()
		if err := ix.Update(id, pos, u.Tick); err != nil {
			// Not indexed yet (insert).
			_ = ix.Insert(id, pos)
		}
	})
}

func oracleSpec(seed int64, n int) workload.FleetSpec {
	return workload.FleetSpec{
		N:        n,
		Region:   geom.Rect{Max: geom.Point{X: 100, Y: 100}},
		MaxSpeed: 2,
		Seed:     seed,
	}
}

// TestDifferentialOracle drives seeded workloads for many ticks with at
// least one motion update per tick, and cross-checks every registered
// query type against the from-scratch reference each tick:
//
//   - an index-accelerated, parallel continuous INSIDE query;
//   - a bounded-Eventually continuous query;
//   - a two-variable relationship (DIST) continuous query;
//   - an assignment-quantifier persistent query (the paper's query R:
//     "speed doubles"), replayed over the logged history.
//
// Every 50 ticks the naive relation itself is cross-checked against
// eval.ReferenceEval, the definitional state-by-state semantics, so the
// chain engine == naive == definition closes end to end.
func TestDifferentialOracle(t *testing.T) {
	seeds := []int64{1, 2, 3}
	ticks := temporal.Tick(1000)
	if testing.Short() {
		seeds = []int64{1}
		ticks = 120
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOracle(t, seed, ticks)
		})
	}
}

func runOracle(t *testing.T, seed int64, ticks temporal.Tick) {
	const (
		nVehicles = 6
		horizon   = temporal.Tick(50)
	)
	spec := oracleSpec(seed, nVehicles)
	db, err := workload.Fleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	region := map[string]geom.Polygon{"P": geom.RectPolygon(20, 20, 70, 70)}

	// Index first, engine second: see maintainIndex.
	ix := index.NewMotionIndex(0, ticks+horizon+1)
	for id, o := range db.Snapshot() {
		pos, perr := o.Position()
		if perr != nil {
			continue
		}
		if ierr := ix.Insert(id, pos); ierr != nil {
			t.Fatal(ierr)
		}
	}
	maintainIndex(db, ix)
	e := NewEngine(db)
	reg := obs.New()
	e.Instrument(reg)

	qInside := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`)
	qWithin := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE Eventually WITHIN 30 INSIDE(o, P)`)
	qDist := ftl.MustParse(`RETRIEVE o, n FROM Vehicles o, Vehicles n WHERE ALWAYS FOR 10 DIST(o, n) <= 40`)
	// Assignment-coupled pair query: both variables are targets, but they
	// share an assignment quantifier, so delta maintenance must refuse it
	// (structural fallback) and keep full-reevaluating.
	qCoupled := ftl.MustParse(`RETRIEVE o, n FROM Vehicles o, Vehicles n
		WHERE [x <- SPEED(o.X.POSITION)] EVENTUALLY WITHIN 10 SPEED(n.X.POSITION) >= x + 1`)
	qSpeed := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE [x <- SPEED(o.X.POSITION)] EVENTUALLY SPEED(o.X.POSITION) >= 2 * x`)

	mkOpts := func(accelerated bool) Options {
		o := Options{Horizon: horizon, Regions: region}
		if accelerated {
			o.MotionIndex = ix
			o.Parallelism = -1
		}
		return o
	}

	cqs := []struct {
		name string
		q    *ftl.Query
		opts Options
	}{
		{"inside-indexed", qInside, mkOpts(true)},
		{"within-parallel", qWithin, Options{Horizon: horizon, Regions: region, Parallelism: -1}},
		{"dist-pairs", qDist, mkOpts(false)},
		{"coupled-fallback", qCoupled, mkOpts(false)},
	}
	regs := make([]*Continuous, len(cqs))
	for i, c := range cqs {
		cq, err := e.Continuous(c.q, c.opts)
		if err != nil {
			t.Fatalf("register %s: %v", c.name, err)
		}
		regs[i] = cq
		defer cq.Cancel()
	}
	pq, err := e.Persistent(qSpeed, Options{Horizon: horizon, Regions: region})
	if err != nil {
		t.Fatal(err)
	}
	defer pq.Cancel()
	anchor := pq.Anchor()

	rng := rand.New(rand.NewSource(seed * 7919))
	vid := func(i int) most.ObjectID {
		return most.ObjectID(fmt.Sprintf("car-%05d", i))
	}

	divergences := 0
	for tk := temporal.Tick(1); tk <= ticks; tk++ {
		db.Advance(1)
		// At least one relevant update per tick (window alignment); some
		// ticks get a second, and occasionally a vehicle stops dead, which
		// exercises zero-motion trajectories in both evaluators.
		n := 1 + rng.Intn(2)
		for j := 0; j < n; j++ {
			v := geom.Vector{X: (rng.Float64() - 0.5) * 4, Y: (rng.Float64() - 0.5) * 4}
			if rng.Intn(10) == 0 {
				v = geom.Vector{}
			}
			if err := db.SetMotion(vid(rng.Intn(nVehicles)), v); err != nil {
				t.Fatal(err)
			}
		}

		for i, c := range cqs {
			got, err := regs[i].Current(tk)
			if err != nil {
				t.Fatalf("tick %d %s: %v", tk, c.name, err)
			}
			naive := naiveEval(t, db, c.q, region, horizon)
			var want []Row
			for _, vals := range naive.At(tk) {
				want = append(want, Row(vals))
			}
			if !sameRows(got, want) {
				divergences++
				t.Errorf("tick %d %s diverged:\n  engine: %v\n  naive:  %v",
					tk, c.name, rowKeys(got), rowKeys(want))
			}
			// Close the loop against the definitional semantics now and
			// then; ReferenceEval is exponential, so only on the
			// single-variable queries and only periodically.
			if tk%50 == 0 && len(c.q.Bindings) == 1 {
				ctx := &eval.Context{
					Now:     db.Now(),
					Horizon: horizon,
					Objects: db.Snapshot(),
					Regions: region,
					Domains: map[string][]eval.Val{},
				}
				if err := ctx.BindDomains(c.q, eval.IDsOf(db)); err != nil {
					t.Fatal(err)
				}
				ref, err := eval.ReferenceEval(c.q, ctx)
				if err != nil {
					t.Fatal(err)
				}
				var refRows []Row
				for _, vals := range ref.At(tk) {
					refRows = append(refRows, Row(vals))
				}
				if !sameRows(want, refRows) {
					t.Errorf("tick %d %s: naive disagrees with ReferenceEval:\n  naive: %v\n  ref:   %v",
						tk, c.name, rowKeys(want), rowKeys(refRows))
				}
			}
		}

		got, err := pq.Current()
		if err != nil {
			t.Fatalf("tick %d persistent: %v", tk, err)
		}
		want := naivePersistent(t, db, qSpeed, region, anchor, horizon)
		if !sameRows(got, want) {
			divergences++
			t.Errorf("tick %d persistent diverged:\n  engine: %v\n  naive:  %v",
				tk, rowKeys(got), rowKeys(want))
		}

		if divergences > 5 {
			t.Fatalf("aborting after %d divergences", divergences)
		}
	}

	// The run must have exercised both maintenance paths: per-object patches
	// (qWithin and qDist are decomposable and bounded) and fallbacks to full
	// reevaluation (qInside is unbounded, qCoupled is assignment-coupled).
	snap := reg.Snapshot()
	for _, c := range []string{
		"query.continuous.delta",
		"query.continuous.full",
		"query.continuous.fallback",
	} {
		if snap.Counters[c] <= 0 {
			t.Errorf("counter %q = %d, want > 0", c, snap.Counters[c])
		}
	}
}
