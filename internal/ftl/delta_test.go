package ftl

import (
	"testing"

	"github.com/mostdb/most/internal/temporal"
)

func analyze(t *testing.T, src string) DeltaAnalysis {
	t.Helper()
	q := NormalizeQuery(*MustParse(src))
	return AnalyzeDelta(&q)
}

func TestAnalyzeDeltaDepth(t *testing.T) {
	cases := []struct {
		src     string
		bounded bool
		depth   temporal.Tick
	}{
		{`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`, true, 0},
		{`RETRIEVE o FROM Vehicles o WHERE o.PRICE <= 100`, true, 0},
		{`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 30 INSIDE(o, P)`, true, 30},
		{`RETRIEVE o FROM Vehicles o WHERE ALWAYS FOR 10 INSIDE(o, P)`, true, 10},
		{`RETRIEVE o FROM Vehicles o WHERE NEXTTIME INSIDE(o, P)`, true, 1},
		{`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 5 ALWAYS FOR 7 INSIDE(o, P)`, true, 12},
		{`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P) UNTIL WITHIN 4 OUTSIDE(o, P)`, true, 4},
		{`RETRIEVE o FROM Vehicles o
			WHERE EVENTUALLY WITHIN 3 INSIDE(o, P) AND ALWAYS FOR 9 OUTSIDE(o, Q)`, true, 9},
		{`RETRIEVE o FROM Vehicles o WHERE NOT EVENTUALLY WITHIN 6 INSIDE(o, P)`, true, 6},
		{`RETRIEVE o FROM Vehicles o WHERE [x <- o.X.POSITION] EVENTUALLY WITHIN 8 o.X.POSITION >= x`, true, 8},
		// Unbounded operators.
		{`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`, false, 0},
		{`RETRIEVE o FROM Vehicles o WHERE ALWAYS INSIDE(o, P)`, false, 0},
		{`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P) UNTIL OUTSIDE(o, P)`, false, 0},
		{`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY AFTER 5 INSIDE(o, P)`, false, 0},
		// Non-literal bound: conservatively unbounded.
		{`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN c INSIDE(o, P)`, false, 0},
	}
	for _, c := range cases {
		a := analyze(t, c.src)
		if a.Bounded != c.bounded {
			t.Errorf("%s: Bounded = %v, want %v", c.src, a.Bounded, c.bounded)
			continue
		}
		if c.bounded && a.Depth != c.depth {
			t.Errorf("%s: Depth = %d, want %d", c.src, a.Depth, c.depth)
		}
	}
}

func TestAnalyzeDeltaMaintainable(t *testing.T) {
	cases := []struct {
		src  string
		want map[string]bool
	}{
		// Single binding, target: maintainable.
		{`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`,
			map[string]bool{"o": true}},
		// Both bindings are targets: both maintainable.
		{`RETRIEVE o, n FROM Vehicles o, Vehicles n WHERE ALWAYS FOR 10 DIST(o, n) <= 40`,
			map[string]bool{"o": true, "n": true}},
		// A binding projected away by answer assembly is not maintainable
		// (answer tuples depend on objects they no longer name): the E5
		// motels shape.
		{`RETRIEVE m FROM Motels m, Vehicles c WHERE DIST(m, c) <= 5 AND m.AVAILABLE = TRUE`,
			map[string]bool{"m": true, "c": false}},
		// Two FROM variables under one assignment quantifier are coupled:
		// neither is maintainable, even though both are targets.
		{`RETRIEVE o, n FROM Vehicles o, Vehicles n
			WHERE [x <- SPEED(o.X.POSITION)] EVENTUALLY WITHIN 20 SPEED(n.X.POSITION) >= x`,
			map[string]bool{"o": false, "n": false}},
		// A single-variable assignment does not couple anything.
		{`RETRIEVE o FROM Vehicles o
			WHERE [x <- o.X.POSITION] EVENTUALLY WITHIN 8 o.X.POSITION >= x`,
			map[string]bool{"o": true}},
	}
	for _, c := range cases {
		a := analyze(t, c.src)
		for v, want := range c.want {
			if a.Maintainable[v] != want {
				t.Errorf("%s: Maintainable[%q] = %v, want %v", c.src, v, a.Maintainable[v], want)
			}
		}
	}
}
