package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestModeSmoke drives every mostbench mode end to end through run() with
// -quick and a temp -out directory: a panicking sweep, a broken flag, or a
// mode that stops writing its report fails tier-1 here instead of being
// discovered at bench time.  Gated behind -short because together the
// quick sweeps take tens of seconds.
func TestModeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mode smoke runs every quick bench; skipped in -short")
	}
	cases := []struct {
		name  string
		args  []string
		wants []string // files that must exist in the out dir afterwards
	}{
		{"default", []string{"-quick", "-only", "E1"}, nil},
		{"parallel", []string{"-parallel", "-quick"}, []string{"BENCH_parallel.json"}},
		{"delta", []string{"-delta", "-quick"}, []string{"BENCH_delta.json"}},
		{"faults", []string{"-faults", "-quick"}, []string{"BENCH_faults.json"}},
		{"chaos", []string{"-chaos", "-quick"}, []string{"BENCH_faults.json"}},
		{"obs", []string{"-obs", "-quick"}, []string{"BENCH_obs.json"}},
		{"server", []string{"-server", "-quick"}, []string{"BENCH_server.json"}},
		{"city", []string{"-city", "-quick"}, []string{"BENCH_city.json"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var stdout, stderr bytes.Buffer
			code := run(append(tc.args, "-out", dir), &stdout, &stderr)
			if code != 0 {
				t.Fatalf("run(%v) exited %d\nstderr: %s", tc.args, code, stderr.String())
			}
			for _, name := range tc.wants {
				path := filepath.Join(dir, name)
				if _, err := os.Stat(path); err != nil {
					t.Fatalf("run(%v) did not write %s: %v\nstdout: %s", tc.args, name, err, stdout.String())
				}
				// Every report announces where it landed.
				if !strings.Contains(stdout.String(), name) {
					t.Fatalf("run(%v) wrote %s without printing its path\nstdout: %s", tc.args, name, stdout.String())
				}
			}
			if len(tc.wants) == 0 && !strings.Contains(stdout.String(), "E1") {
				t.Fatalf("run(%v) printed no experiment table\nstdout: %s", tc.args, stdout.String())
			}
		})
	}
}

// TestRunErrors checks the failure paths keep failing: an unknown flag and
// a filter matching no experiment must exit non-zero.
func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown flag exited 0")
	}
	stderr.Reset()
	if code := run([]string{"-only", "E99"}, &stdout, &stderr); code == 0 {
		t.Fatal("-only E99 exited 0")
	}
	if !strings.Contains(stderr.String(), "no experiment matches") {
		t.Fatalf("unexpected stderr: %s", stderr.String())
	}
}
