// Package integration cross-checks the independent stacks of the library
// against each other on shared scenarios: the FTL evaluator, the dynamic-
// attribute indexes, the MOST-on-DBMS layer, and the distributed simulator
// must all agree on the same fleets.
package integration

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/mostdb/most/internal/dist"
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/mostsql"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/relstore"
	"github.com/mostdb/most/internal/temporal"
)

// fleet builds n vehicles with 1-D motion on the X axis in both a MOST
// database and a raw attribute map.
func fleet(t *testing.T, n int, seed int64) (*most.Database, map[most.ObjectID]motion.DynamicAttr) {
	t.Helper()
	db := most.NewDatabase()
	cls := most.MustClass("Vehicles", true)
	if err := db.DefineClass(cls); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	attrs := map[most.ObjectID]motion.DynamicAttr{}
	for i := 0; i < n; i++ {
		id := most.ObjectID(fmt.Sprintf("v%03d", i))
		x := motion.DynamicAttr{
			Value:    float64(r.Intn(400) - 200),
			Function: motion.Linear(float64(r.Intn(9) - 4)),
		}
		attrs[id] = x
		o, err := most.NewObject(id, cls)
		if err != nil {
			t.Fatal(err)
		}
		o, err = o.WithPosition(motion.Position{X: x, Y: motion.Static(0), Z: motion.Static(0)})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	return db, attrs
}

func idsOfRows(rows []query.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[0].String()
	}
	sort.Strings(out)
	return out
}

func TestFTLAgreesWithAttrIndex(t *testing.T) {
	db, attrs := fleet(t, 120, 5)
	engine := query.NewEngine(db)
	ix := index.NewAttrIndex(0, 300)
	ix.Rebuild(0, attrs)

	const lo, hi = 40.0, 55.0
	// Continuous FTL query over the X position.
	q := ftl.MustParse(fmt.Sprintf(
		`RETRIEVE o FROM Vehicles o WHERE o.X.POSITION >= %g AND o.X.POSITION <= %g`, lo, hi))
	rel, err := engine.InstantaneousRelation(q, query.Options{Horizon: 299})
	if err != nil {
		t.Fatal(err)
	}
	ixAns := ix.ContinuousQuery(lo, hi, 0)
	ixByID := map[most.ObjectID]geom.RealSet{}
	for _, a := range ixAns {
		ixByID[a.ID] = a.Times
	}
	// Every tick must agree between the FTL relation and the index answer.
	for tick := temporal.Tick(0); tick < 300; tick += 7 {
		ftlIDs := map[string]bool{}
		for _, vals := range rel.At(tick) {
			ftlIDs[vals[0].String()] = true
		}
		for id, times := range ixByID {
			// The index's real intervals may shave boundary instants the
			// tick semantics keeps; compare via the attribute value when
			// they disagree.
			if times.Contains(float64(tick)) != ftlIDs[string(id)] {
				v := attrs[id].At(tick)
				if v >= lo-1e-9 && v <= hi+1e-9 && (v < lo+1e-9 || v > hi-1e-9) {
					continue // boundary instant
				}
				t.Fatalf("tick %d object %s: index %v, ftl %v (x=%v)",
					tick, id, times.Contains(float64(tick)), ftlIDs[string(id)], v)
			}
		}
		// And nothing in the FTL answer is missing from the index.
		for id := range ftlIDs {
			if _, ok := ixByID[most.ObjectID(id)]; !ok {
				v := attrs[most.ObjectID(id)].At(tick)
				t.Fatalf("tick %d: ftl reports %s (x=%v) unknown to the index", tick, id, v)
			}
		}
	}
}

func TestFTLAgreesWithMostSQL(t *testing.T) {
	db, attrs := fleet(t, 80, 9)
	engine := query.NewEngine(db)

	now := temporal.Tick(0)
	sys := mostsql.New(relstore.NewStore(), func() temporal.Tick { return now })
	if _, err := sys.CreateTable("vehicles", "id", nil, []string{"X"}); err != nil {
		t.Fatal(err)
	}
	ids := make([]most.ObjectID, 0, len(attrs))
	for id := range attrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := sys.Insert("vehicles", relstore.Str(string(id)), nil,
			map[string]motion.DynamicAttr{"X": attrs[id]}); err != nil {
			t.Fatal(err)
		}
	}

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE o.X.POSITION >= -20 AND o.X.POSITION <= 60`)
	for _, tick := range []temporal.Tick{0, 13, 47} {
		for db.Now() < tick {
			db.Tick()
		}
		now = tick
		rows, err := engine.Instantaneous(q, query.Options{Horizon: 100})
		if err != nil {
			t.Fatal(err)
		}
		ftlIDs := idsOfRows(rows)

		rs, err := sys.Query("SELECT id FROM vehicles WHERE X >= -20 AND X <= 60")
		if err != nil {
			t.Fatal(err)
		}
		sqlIDs := make([]string, 0, len(rs.Rows))
		for _, r := range rs.Rows {
			sqlIDs = append(sqlIDs, r[0].String())
		}
		sort.Strings(sqlIDs)

		if strings.Join(ftlIDs, ",") != strings.Join(sqlIDs, ",") {
			t.Fatalf("t=%d: FTL %v vs SQL %v", tick, ftlIDs, sqlIDs)
		}
	}
}

func TestFTLAgreesWithMotionIndex(t *testing.T) {
	db := most.NewDatabase()
	cls := most.MustClass("Vehicles", true)
	if err := db.DefineClass(cls); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	ix := index.NewMotionIndex(0, 200)
	for i := 0; i < 100; i++ {
		id := most.ObjectID(fmt.Sprintf("v%03d", i))
		pos := motion.MovingFrom(
			geom.Point{X: float64(r.Intn(400) - 200), Y: float64(r.Intn(400) - 200)},
			geom.Vector{X: float64(r.Intn(7) - 3), Y: float64(r.Intn(7) - 3)},
			0)
		o, _ := most.NewObject(id, cls)
		o, err := o.WithPosition(pos)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(o); err != nil {
			t.Fatal(err)
		}
		if err := ix.Insert(id, pos); err != nil {
			t.Fatal(err)
		}
	}
	engine := query.NewEngine(db)
	pg := geom.RectPolygon(0, 0, 60, 60)
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`)
	rel, err := engine.InstantaneousRelation(q, query.Options{
		Horizon: 199,
		Regions: map[string]geom.Polygon{"P": pg},
	})
	if err != nil {
		t.Fatal(err)
	}
	ftlIDs := map[string]bool{}
	for _, vals := range rel.At(0) {
		ftlIDs[vals[0].String()] = true
	}
	ixIDs := map[string]bool{}
	for _, a := range ix.InsidePolygonDuring(pg, 0, 199) {
		ixIDs[string(a.ID)] = true
	}
	if len(ftlIDs) != len(ixIDs) {
		t.Fatalf("FTL %d objects, index %d", len(ftlIDs), len(ixIDs))
	}
	for id := range ftlIDs {
		if !ixIDs[id] {
			t.Fatalf("FTL found %s, index did not", id)
		}
	}
}

func TestDistributedAgreesWithCentral(t *testing.T) {
	// The broadcast-query strategy over per-node evaluation must equal the
	// central engine's answer on the same fleet.
	db, attrs := fleet(t, 60, 11)
	engine := query.NewEngine(db)
	sim := dist.NewSim(1)
	for _, o := range db.Objects("Vehicles") {
		if _, err := sim.AddNode(o); err != nil {
			t.Fatal(err)
		}
	}
	pg := geom.RectPolygon(50, -10, 120, 10)
	sim.Regions["P"] = pg
	opts := query.Options{Horizon: 100, Regions: map[string]geom.Polygon{"P": pg}}
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 100 INSIDE(o, P)`)

	rows, err := engine.Instantaneous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	central := idsOfRows(rows)

	res, err := sim.RunObjectQuery(sim.Nodes()[0], q, 100, dist.BroadcastQuery)
	if err != nil {
		t.Fatal(err)
	}
	var distributed []string
	for _, vals := range res.Relation.At(0) {
		distributed = append(distributed, vals[0].String())
	}
	sort.Strings(distributed)
	if strings.Join(central, ",") != strings.Join(distributed, ",") {
		t.Fatalf("central %v vs distributed %v", central, distributed)
	}
	_ = attrs
}

func TestConcurrentUpdatesAndQueries(t *testing.T) {
	// The engine and database must tolerate concurrent updates, clock
	// advancement and query evaluation (run with -race).
	db, _ := fleet(t, 30, 21)
	engine := query.NewEngine(db)
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE o.X.POSITION >= 0`)
	cq, err := engine.Continuous(q, query.Options{Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}

	var writers sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	writers.Add(2)
	go func() {
		defer writers.Done()
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 50; i++ {
			id := most.ObjectID(fmt.Sprintf("v%03d", r.Intn(30)))
			if err := db.SetMotion(id, geom.Vector{X: float64(r.Intn(7) - 3)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer writers.Done()
		for i := 0; i < 25; i++ {
			db.Tick()
		}
	}()
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := cq.Current(db.Now()); err != nil {
				t.Error(err)
				return
			}
			if _, err := engine.Instantaneous(q, query.Options{Horizon: 50}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	// A final evaluation on the quiesced database still works.
	if _, err := engine.Instantaneous(q, query.Options{Horizon: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestContinuousQueryDeliveredToMovingClient(t *testing.T) {
	// End to end across the server and network layers: a continuous query's
	// materialized Answer(CQ) is computed by the central engine (§2.3) and
	// transmitted to a moving client under both §5.2 approaches; with full
	// connectivity the client displays exactly the same rows per tick that
	// the server would.
	db, _ := fleet(t, 40, 31)
	engine := query.NewEngine(db)
	pg := geom.RectPolygon(20, -10, 80, 10)
	opts := query.Options{Horizon: 150, Regions: map[string]geom.Polygon{"P": pg}}
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	cq, err := engine.Continuous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := cq.Answer()
	if err != nil {
		t.Fatal(err)
	}
	answers := rel.Answers()
	if len(answers) == 0 {
		t.Fatal("scenario produced no answers")
	}
	sim := dist.NewSim(3)
	always := func(temporal.Tick) bool { return true }
	for _, mode := range []dist.DeliveryMode{dist.Immediate, dist.Delayed} {
		st := sim.DeliverAnswer(answers, mode, 8, 0, 150, always)
		if st.MissedDisplays != 0 {
			t.Fatalf("mode %v: %d missed displays with full connectivity", mode, st.MissedDisplays)
		}
		if st.Bytes != len(answers)*sim.Cost.TupleBytes {
			t.Fatalf("mode %v: bytes = %d, want %d", mode, st.Bytes, len(answers)*sim.Cost.TupleBytes)
		}
	}
}

func TestPersistentSurvivesTeleport(t *testing.T) {
	// History synthesis encodes value discontinuities (explicit teleports)
	// as sub-tick ramps; a persistent spatial query sees the object's
	// actual past positions on both sides of the jump.
	db := most.NewDatabase()
	cls := most.MustClass("Vehicles", true)
	if err := db.DefineClass(cls); err != nil {
		t.Fatal(err)
	}
	o, _ := most.NewObject("v", cls)
	o, err := o.WithPosition(motion.MovingFrom(geom.Point{X: 0}, geom.Vector{}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(o); err != nil {
		t.Fatal(err)
	}
	engine := query.NewEngine(db)
	pg := geom.RectPolygon(95, -5, 105, 5)
	opts := query.Options{Horizon: 60, Regions: map[string]geom.Polygon{"P": pg}}
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`)
	pq, err := engine.Persistent(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rows, _ := pq.Current(); len(rows) != 0 {
		t.Fatal("parked at origin: should not reach P")
	}
	// Teleport into P at t=10 (both sub-attributes explicitly updated).
	db.Advance(10)
	cur, _ := db.Get("v")
	pos, _ := cur.Position()
	if err := db.SetDynamic("v", most.XPosition, pos.X.SetAt(10, 100, motion.Constant())); err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Current()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatal("after teleporting into P the persistent query should fire")
	}
}
