package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/server"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
)

// watcher records one subscription's notification stream as the chaos
// plays out, checking the two invariants a resumable stream owes its
// consumer:
//
//	no gaps        — sequence numbers only move forward, and the stream
//	                 ends converged to the server's ground-truth answer
//	                 (anything missed during an outage arrived via the
//	                 resume reconciliation)
//	no regressions — a later sequence number never carries an answer the
//	                 stream has already moved past (a resume replaying old
//	                 state would show up here)
//
// Note the server pushes one notification per maintenance round, so two
// consecutive rounds may carry identical content legitimately; duplicate
// suppression is a property of the resume path specifically and is
// asserted by the client package's reconciliation tests.
type watcher struct {
	sub  *client.Subscription
	quit chan struct{}

	mu        sync.Mutex
	lastSeq   uint64
	lastCanon string
	lastAns   []wire.AnswerRow
	violation error
	ended     error
}

func watch(sub *client.Subscription) *watcher {
	ans, seq, _ := sub.Answer()
	w := &watcher{
		sub:       sub,
		quit:      make(chan struct{}),
		lastSeq:   seq,
		lastCanon: wire.CanonicalAnswers(ans),
		lastAns:   ans,
	}
	go w.loop()
	return w
}

func (w *watcher) loop() {
	for {
		select {
		case <-w.quit:
			return
		case <-w.sub.Done():
			w.mu.Lock()
			w.ended = w.sub.Err()
			w.mu.Unlock()
			return
		case <-w.sub.Updates():
			w.observe()
		}
	}
}

// observe folds the newest answer into the record.  Updates() coalesces,
// so a jump of several sequence numbers is legitimate; only an adjacent
// step can be checked for duplicate content.
func (w *watcher) observe() {
	ans, seq, err := w.sub.Answer()
	if err != nil {
		return
	}
	canon := wire.CanonicalAnswers(ans)
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case seq < w.lastSeq:
		w.fault(fmt.Errorf("sequence went backwards: %d after %d", seq, w.lastSeq))
	case seq == w.lastSeq && canon != w.lastCanon:
		w.fault(fmt.Errorf("answer changed without a sequence step at seq %d", seq))
	}
	if seq > w.lastSeq {
		w.lastSeq, w.lastCanon, w.lastAns = seq, canon, ans
	}
}

func (w *watcher) fault(err error) {
	if w.violation == nil {
		w.violation = err
	}
}

// verify waits (bounded) for the stream to converge to the ground-truth
// rows presented at tick now, then reports any recorded violation.
// Convergence is the gap-freedom check: a lost notification would strand
// the stream on a stale answer forever.  Comparison is at-a-tick
// (wire.RowsAt), not raw answer bytes, because answer intervals are
// anchored at each registration's own start time.
func (w *watcher) verify(truth string, now temporal.Tick, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		w.observe() // the final delivery may have raced loop's last select
		w.mu.Lock()
		violation, ended, ans := w.violation, w.ended, w.lastAns
		w.mu.Unlock()
		if violation != nil {
			return violation
		}
		if ended != nil {
			return fmt.Errorf("stream ended during chaos: %w", ended)
		}
		if canonicalRowsAt(ans, now) == truth {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("stream never converged to ground truth (gap): stuck at seq %d", w.lastSeq)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// canonicalRowsAt renders the rows an answer presents at tick t in an
// order-independent canonical form.
func canonicalRowsAt(answer []wire.AnswerRow, t temporal.Tick) string {
	rows := wire.RowsAt(answer, t)
	keys := make([]string, len(rows))
	for i, row := range rows {
		var b strings.Builder
		for _, v := range row {
			b.WriteString(v.String())
			b.WriteByte(0)
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func (w *watcher) stop() {
	select {
	case <-w.quit:
	default:
		close(w.quit)
	}
}

func counterValue(reg *obs.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

func shutdownServer(srv *server.Server, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return srv.Shutdown(ctx)
}
