package query

import (
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/temporal"
)

// deltaPlan is the per-registration decomposability classification: which
// updates can be folded into the materialized Answer(CQ) by recomputing
// only the touched object's instantiations.  Computed once from the
// normalized query at registration; immutable afterwards.
type deltaPlan struct {
	analysis ftl.DeltaAnalysis
	// varsByClass lists the FROM-bound variables ranging over each class:
	// an update to an object of class C is covered by re-pinning each of
	// C's variables to that object.
	varsByClass map[string][]string
}

func newDeltaPlan(q *ftl.Query) deltaPlan {
	nq := ftl.NormalizeQuery(*q)
	p := deltaPlan{
		analysis:    ftl.AnalyzeDelta(&nq),
		varsByClass: map[string][]string{},
	}
	for _, b := range nq.Bindings {
		p.varsByClass[b.Class] = append(p.varsByClass[b.Class], b.Var)
	}
	return p
}

// deltable reports whether the update can be applied as a per-object
// delta: the formula's lookahead must be finite and fit the horizon, and
// every variable ranging over the updated object's class must be
// maintainable (a RETRIEVE target, uncoupled by assignment quantifiers).
func (p deltaPlan) deltable(u most.Update, horizon temporal.Tick) bool {
	if !p.analysis.Bounded || p.analysis.Depth > horizon {
		return false
	}
	class := updateClass(u)
	if class == "" {
		return false
	}
	vars := p.varsByClass[class]
	if len(vars) == 0 {
		return false
	}
	for _, v := range vars {
		if !p.analysis.Maintainable[v] {
			return false
		}
	}
	return true
}

// updateClass names the class of the object an update touches ("" when the
// update carries no revision).
func updateClass(u most.Update) string {
	switch {
	case u.After != nil:
		return u.After.Class().Name()
	case u.Before != nil:
		return u.Before.Class().Name()
	}
	return ""
}

// pinnedContext builds the minimal evaluation context for a one-variable
// query pinned to a single object: the variable's domain is the object
// itself, so the context carries only that object's revision — no database
// snapshot, no all-ids domain bind.  Mirrors Engine.context otherwise.
func (e *Engine) pinnedContext(opts Options, now temporal.Tick, sp *obs.Span, pin string, id most.ObjectID, o *most.Object) *eval.Context {
	ctx := &eval.Context{
		Now:             now,
		Horizon:         opts.horizon(),
		Objects:         map[most.ObjectID]*most.Object{id: o},
		Regions:         opts.Regions,
		Params:          opts.Params,
		Domains:         map[string][]eval.Val{pin: {eval.ObjVal(id)}},
		MaxAssignStates: opts.MaxAssignStates,
		BisectSamples:   opts.BisectSamples,
		Parallelism:     opts.Parallelism,
		Obs:             e.reg(),
		Span:            sp,
	}
	if ix := opts.MotionIndex; ix != nil {
		ctx.InsideCandidates = func(pg geom.Polygon, w temporal.Interval) []most.ObjectID {
			return ix.CandidatesInRect(pg.Bounds(), float64(w.Start), float64(w.End))
		}
	}
	return ctx
}

// runDelta applies one batch of queued updates as per-object patches: each
// distinct touched object has its answer tuples recomputed from the
// current state — one pinned evaluation per variable of its class — and
// spliced into a copy of the materialized relation (remove the object's
// old tuples, insert the recomputed ones).  Reading the *current* state
// makes the patch idempotent: a later update to the same object queued
// behind this round is absorbed, and recomputing in any order converges.
// A patch that reproduces the installed relation exactly is not fanned
// out (see runFull's no-change suppression).  Returns false when the
// batch cannot be applied and the caller must fall back to a full
// reevaluation.
func (p *sharedPlan) runDelta(batch []most.Update) bool {
	e := p.engine
	reg := e.reg()
	sp := reg.StartSpan("query.continuous.delta")
	defer sp.End()
	t0 := reg.Start()
	defer reg.Histogram("query.continuous.delta_ns").Since(t0)

	// Distinct touched objects, in arrival order.
	seen := map[most.ObjectID]bool{}
	ids := make([]most.ObjectID, 0, len(batch))
	for _, u := range batch {
		if !seen[u.Object] {
			seen[u.Object] = true
			ids = append(ids, u.Object)
		}
	}

	// Version before the snapshot, as in runFull, so the install stamp is
	// conservative.
	v := e.db.Version()
	now := e.db.Now()
	nq := ftl.NormalizeQuery(*p.query)
	// Single-binding fast path: a pinned evaluation of a one-variable query
	// touches only the pinned object, so the context can carry just that
	// object instead of a full database snapshot and all-ids domain — this
	// is what keeps per-update maintenance cost independent of fleet size.
	single := ""
	if len(nq.Bindings) == 1 {
		single = nq.Bindings[0].Var
	}
	var ctx *eval.Context
	if single == "" {
		full, err := e.context(&nq, p.opts, now, sp)
		if err != nil {
			reg.Counter("query.continuous.fallback").Inc()
			return false
		}
		ctx = full
	}
	replacements := make(map[most.ObjectID][]*eval.Relation, len(ids))
	for _, id := range ids {
		o, ok := e.db.Get(id)
		if !ok {
			// Object deleted: removal only.
			continue
		}
		for _, pin := range p.plan.varsByClass[o.Class().Name()] {
			ectx := ctx
			if single != "" {
				ectx = e.pinnedContext(p.opts, now, sp, pin, id, o)
			}
			rel, err := eval.EvalQueryPinned(&nq, ectx, pin, eval.ObjVal(id))
			if err != nil {
				reg.Counter("query.continuous.fallback").Inc()
				return false
			}
			e.countEval()
			replacements[id] = append(replacements[id], rel)
		}
	}

	p.mu.Lock()
	if p.removed {
		p.mu.Unlock()
		return true // drain observes removal and stops
	}
	if p.err != nil || p.answer == nil {
		p.mu.Unlock()
		return false
	}
	patched := p.answer.Clone()
	for _, id := range ids {
		ov := eval.ObjVal(id)
		for _, col := range patched.Cols {
			if _, err := patched.DeleteWhere(col, ov); err != nil {
				p.mu.Unlock()
				return false
			}
		}
		for _, rel := range replacements[id] {
			if err := patched.InsertFrom(rel); err != nil {
				p.mu.Unlock()
				return false
			}
		}
	}
	if v > p.version {
		p.version = v
	}
	reg.Counter("query.continuous.delta").Add(int64(len(ids)))
	if p.answer.Equal(patched) {
		// The patch changed nothing: keep the installed relation object
		// and do not fan out.
		reg.Counter("query.continuous.suppressed").Inc()
		p.mu.Unlock()
		return true
	}
	p.answer = patched
	subs := append([]*Continuous(nil), p.subs...)
	p.mu.Unlock()
	p.notify(subs, patched)
	return true
}
