package workload

import (
	"testing"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/temporal"
)

var testRegion = geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 100, Y: 100}}

func TestFleetDeterministic(t *testing.T) {
	spec := FleetSpec{N: 25, Region: testRegion, MaxSpeed: 3, Seed: 7}
	db1, err := Fleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Fleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if db1.Count() != 25 || db2.Count() != 25 {
		t.Fatalf("counts = %d %d", db1.Count(), db2.Count())
	}
	for _, o1 := range db1.Objects("Vehicles") {
		o2, ok := db2.Get(o1.ID())
		if !ok {
			t.Fatalf("missing %s", o1.ID())
		}
		p1, _ := o1.PositionAt(10)
		p2, _ := o2.PositionAt(10)
		if p1 != p2 {
			t.Fatalf("nondeterministic fleet: %v vs %v", p1, p2)
		}
		// Positions start inside the region.
		p0, _ := o1.PositionAt(0)
		if !testRegion.ContainsPoint(p0) {
			t.Fatalf("start %v outside region", p0)
		}
	}
}

func TestUpdateStreamAndApply(t *testing.T) {
	spec := FleetSpec{N: 10, Region: testRegion, MaxSpeed: 2, Seed: 3}
	db, err := Fleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	events := UpdateStream(spec, 0.1, 50)
	if len(events) == 0 {
		t.Fatal("expected some updates at rate 0.1")
	}
	// Events are within range and reference fleet vehicles.
	for _, e := range events {
		if e.Tick < 1 || e.Tick > 50 {
			t.Fatalf("event tick %d out of range", e.Tick)
		}
		if _, ok := db.Get(e.Object); !ok {
			t.Fatalf("event for unknown object %s", e.Object)
		}
	}
	n, err := Apply(db, events)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(events) {
		t.Fatalf("applied %d of %d", n, len(events))
	}
	if db.Now() == 0 {
		t.Fatal("clock should have advanced")
	}
	if got := len(db.Log()); got < len(events) {
		t.Fatalf("log has %d entries, want >= %d", got, len(events))
	}
}

func TestUpdateTrafficRatio(t *testing.T) {
	spec := FleetSpec{N: 100, Region: testRegion, MaxSpeed: 2, Seed: 5}
	pos, vec := UpdateTraffic(spec, 0.02, 100)
	if pos != 100*100 {
		t.Fatalf("position messages = %d", pos)
	}
	// Vector messages should be roughly rate*N*T = 200, and far below pos.
	if vec < 100 || vec > 400 {
		t.Fatalf("vector messages = %d, want around 200", vec)
	}
	if vec*10 > pos {
		t.Fatalf("motion-vector traffic (%d) not well below position traffic (%d)", vec, pos)
	}
}

func TestAddMotels(t *testing.T) {
	db := most.NewDatabase()
	if err := AddMotels(db, MotelsSpec{N: 30, Region: testRegion, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	motels := db.Objects("Motels")
	if len(motels) != 30 {
		t.Fatalf("motels = %d", len(motels))
	}
	for _, m := range motels {
		price, err := m.Static("PRICE")
		if err != nil {
			t.Fatal(err)
		}
		if f, ok := price.AsFloat(); !ok || f < 30 || f > 230 {
			t.Fatalf("price = %v", price)
		}
		// Motels are stationary.
		p0, _ := m.PositionAt(0)
		p9, _ := m.PositionAt(999)
		if p0 != p9 {
			t.Fatal("motel moved")
		}
	}
	// Adding to a db that already defines the class works (e.g. on top of
	// a fleet database).
	if err := AddMotels(db, MotelsSpec{N: 5, Region: testRegion, Seed: 9}); err == nil {
		// Same ids collide; expect error.
		t.Fatal("duplicate motel ids should fail")
	}
}

func TestAirspace(t *testing.T) {
	spec := AirspaceSpec{N: 40, Radius: 100, Airport: geom.Point{X: 500, Y: 500}, Speed: 2, Inbound: 0.5, Seed: 11}
	db, err := Airspace(spec)
	if err != nil {
		t.Fatal(err)
	}
	aircraft := db.Objects("Aircraft")
	if len(aircraft) != 40 {
		t.Fatalf("aircraft = %d", len(aircraft))
	}
	inbound := 0
	for _, a := range aircraft {
		p0, _ := a.PositionAt(0)
		d0 := geom.Dist(p0, spec.Airport)
		if d0 < spec.Radius-1 || d0 > spec.Radius+1 {
			t.Fatalf("aircraft starts at distance %v, want ~%v", d0, spec.Radius)
		}
		// Inbound aircraft get closer over time.
		p10, _ := a.PositionAt(10)
		if geom.Dist(p10, spec.Airport) < d0-1 {
			inbound++
		}
		// Fuel decreases.
		f0, _ := a.ValueAt("FUEL", 0)
		f10, _ := a.ValueAt("FUEL", 10)
		if f10.F >= f0.F {
			t.Fatal("fuel should burn")
		}
	}
	if inbound < 10 || inbound > 30 {
		t.Fatalf("inbound = %d of 40, want around 20", inbound)
	}
	_ = temporal.Tick(0)
}
