package eval

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// randomScenario builds a fleet of randomly moving vehicles.  All values
// are small integers (or quarters) so closed-form roots are exact and the
// relation algorithm and the reference evaluator cannot disagree through
// float noise at boundary instants.
func randomScenario(r *rand.Rand, nObjs int) *Context {
	cls := most.MustClass("V", true, most.AttrDef{Name: "PRICE", Kind: most.Static})
	ctx := &Context{
		Now:     temporal.Tick(r.Intn(5)),
		Horizon: 25,
		Objects: map[most.ObjectID]*most.Object{},
		Regions: map[string]geom.Polygon{
			"P": geom.RectPolygon(5, -20, 15, 20),
			"Q": geom.RectPolygon(-10, -20, 0, 20),
		},
		Params:  map[string]Val{},
		Domains: map[string][]Val{},
	}
	for i := 0; i < nObjs; i++ {
		id := most.ObjectID(fmt.Sprintf("o%d", i))
		o, err := most.NewObject(id, cls)
		if err != nil {
			panic(err)
		}
		o, _ = o.WithStatic("PRICE", most.Float(float64(r.Intn(8)*25)))
		// Position: random start, piecewise velocity with 1-2 pieces.
		mk := func() motion.DynamicAttr {
			pieces := []motion.Piece{{Start: 0, Slope: float64(r.Intn(7) - 3)}}
			if r.Intn(2) == 0 {
				pieces = append(pieces, motion.Piece{Start: float64(3 + r.Intn(12)), Slope: float64(r.Intn(7) - 3)})
			}
			return motion.DynamicAttr{
				Value:      float64(r.Intn(41) - 20),
				UpdateTime: ctx.Now,
				Function:   motion.MustFunc(pieces...),
			}
		}
		o, _ = o.WithPosition(motion.Position{X: mk(), Y: mk(), Z: motion.LinearFrom(0, 0, 0)})
		ctx.Objects[id] = o
		ctx.Domains["o"] = append(ctx.Domains["o"], ObjVal(id))
		ctx.Domains["n"] = append(ctx.Domains["n"], ObjVal(id))
	}
	return ctx
}

// randomFormula generates a random FTL formula of bounded depth over
// variables o and n.
func randomFormula(r *rand.Rand, depth int) ftl.Formula {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return ftl.Inside{Obj: ftl.Var{Name: "o"}, Region: ftl.Var{Name: "P"}}
		case 1:
			return ftl.Inside{Obj: ftl.Var{Name: "n"}, Region: ftl.Var{Name: "Q"}}
		case 2:
			return ftl.Compare{Op: relopFor(r), L: ftl.AttrRef{Obj: ftl.Var{Name: "o"}, Path: []string{"PRICE"}}, R: ftl.Num{V: float64(r.Intn(8) * 25)}}
		case 3:
			return ftl.Compare{Op: relopFor(r), L: ftl.DistOf{A: ftl.Var{Name: "o"}, B: ftl.Var{Name: "n"}}, R: ftl.Num{V: float64(r.Intn(20))}}
		case 4:
			return ftl.Compare{
				Op: relopFor(r),
				L:  ftl.AttrRef{Obj: ftl.Var{Name: "o"}, Path: []string{"X", "POSITION"}},
				R:  ftl.Num{V: float64(r.Intn(31) - 15)},
			}
		default:
			return ftl.Outside{Obj: ftl.Var{Name: "o"}, Region: ftl.Var{Name: "P"}}
		}
	}
	sub := func() ftl.Formula { return randomFormula(r, depth-1) }
	switch r.Intn(10) {
	case 0:
		return ftl.And{L: sub(), R: sub()}
	case 1:
		return ftl.Or{L: sub(), R: sub()}
	case 2:
		return ftl.Not{F: sub()}
	case 3:
		return ftl.Until{L: sub(), R: sub()}
	case 4:
		return ftl.Until{L: sub(), R: sub(), Within: ftl.Num{V: float64(r.Intn(10))}}
	case 5:
		return ftl.Nexttime{F: sub()}
	case 6:
		return ftl.Eventually{F: sub(), Within: ftl.Num{V: float64(r.Intn(10))}}
	case 7:
		return ftl.Eventually{F: sub(), After: ftl.Num{V: float64(r.Intn(6))}}
	case 8:
		return ftl.Always{F: sub(), For: ftl.Num{V: float64(r.Intn(6))}}
	default:
		return ftl.Eventually{F: sub()}
	}
}

func relopFor(r *rand.Rand) string {
	return []string{"<", "<=", ">", ">=", "=", "!="}[r.Intn(6)]
}

// TestAlgorithmMatchesReference is the central correctness property: the
// appendix relation algorithm agrees with the literal §3.3 semantics on
// random fleets and random formulas.
func TestAlgorithmMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for i := 0; i < 150; i++ {
		ctx := randomScenario(r, 1+r.Intn(3))
		f := randomFormula(r, 1+r.Intn(2))
		q := &ftl.Query{Targets: []string{"o"}, Where: f}
		got, err := EvalQuery(q, ctx)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, f, err)
		}
		want, err := ReferenceEval(q, ctx)
		if err != nil {
			t.Fatalf("case %d reference (%s): %v", i, f, err)
		}
		if !relationsEqual(got, want) {
			t.Fatalf("case %d mismatch for %s:\n got: %s\nwant: %s",
				i, f, dumpRelation(got), dumpRelation(want))
		}
	}
}

// TestAssignmentMatchesReference exercises the assignment quantifier
// against the reference semantics.
func TestAssignmentMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	templates := []string{
		`RETRIEVE o FROM V o WHERE [x <- o.PRICE] EVENTUALLY WITHIN 5 o.PRICE >= x`,
		`RETRIEVE o FROM V o WHERE [x <- SPEED(o.X.POSITION)] EVENTUALLY WITHIN 8 SPEED(o.X.POSITION) > x`,
		`RETRIEVE o FROM V o WHERE [x <- o.X.POSITION] NEXTTIME o.X.POSITION != x`,
		`RETRIEVE o FROM V o WHERE [x <- o.X.POSITION.value] o.X.POSITION >= x`,
		`RETRIEVE o FROM V o WHERE [x <- time] EVENTUALLY WITHIN 3 time = x + 3`,
	}
	for i := 0; i < 40; i++ {
		ctx := randomScenario(r, 1+r.Intn(3))
		src := templates[i%len(templates)]
		q := ftl.MustParse(src)
		got, err := EvalQuery(q, ctx)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, src, err)
		}
		want, err := ReferenceEval(q, ctx)
		if err != nil {
			t.Fatalf("case %d reference: %v", i, err)
		}
		if !relationsEqual(got, want) {
			t.Fatalf("case %d mismatch for %s:\n got: %s\nwant: %s",
				i, src, dumpRelation(got), dumpRelation(want))
		}
	}
}

// TestPairQueriesMatchReference exercises two-variable queries (joins,
// alignment and expansion paths).
func TestPairQueriesMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(4321))
	for i := 0; i < 60; i++ {
		ctx := randomScenario(r, 2+r.Intn(2))
		f := randomFormula(r, 2)
		q := &ftl.Query{Targets: []string{"o", "n"}, Where: f}
		got, err := EvalQuery(q, ctx)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, f, err)
		}
		want, err := ReferenceEval(q, ctx)
		if err != nil {
			t.Fatalf("case %d reference: %v", i, err)
		}
		if !relationsEqual(got, want) {
			t.Fatalf("case %d mismatch for %s:\n got: %s\nwant: %s",
				i, f, dumpRelation(got), dumpRelation(want))
		}
	}
}

func relationsEqual(a, b *Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	ta, tb := a.Tuples(), b.Tuples()
	for i := range ta {
		if len(ta[i].Vals) != len(tb[i].Vals) {
			return false
		}
		for j := range ta[i].Vals {
			if ta[i].Vals[j] != tb[i].Vals[j] {
				return false
			}
		}
		if !ta[i].Times.Equal(tb[i].Times) {
			return false
		}
	}
	return true
}

func dumpRelation(r *Relation) string {
	s := ""
	for _, t := range r.Tuples() {
		s += "\n  "
		for _, v := range t.Vals {
			s += v.String() + " "
		}
		s += "-> " + t.Times.String()
	}
	if s == "" {
		return "(empty)"
	}
	return s
}

// TestGenericCompareBisection drives the sampled fallback (products of
// trajectories have no closed form) and sanity-checks it per tick.
func TestGenericCompareBisection(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		ctx := randomScenario(r, 1)
		ctx.BisectSamples = 2048
		q := ftl.MustParse(`RETRIEVE o FROM V o WHERE o.X.POSITION * o.Y.POSITION >= 1`)
		rel, err := EvalQuery(q, ctx)
		if err != nil {
			t.Fatal(err)
		}
		id := ctx.Domains["o"][0]
		obj := ctx.Objects[id.Obj]
		pos, _ := obj.Position()
		w := ctx.Window()
		set, _ := rel.Lookup([]Val{id})
		for tick := w.Start; tick <= w.End; tick++ {
			x := pos.X.At(tick)
			y := pos.Y.At(tick)
			want := x*y >= 1
			if set.Contains(tick) != want {
				if math.Abs(x*y-1) < 1e-6 {
					continue
				}
				t.Fatalf("case %d tick %d: got %v want %v (x=%v y=%v)", i, tick, set.Contains(tick), want, x, y)
			}
		}
	}
}
