package relstore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestCreateInsertSelect(t *testing.T) {
	s := NewStore()
	s.MustExec("CREATE TABLE motels (name, x, y, price, rooms)")
	s.MustExec("INSERT INTO motels VALUES ('Super8', 10, 20, 60, 12), ('Ritz', 5, 5, 400, 0)")

	rs := s.MustExec("SELECT name, price FROM motels WHERE price <= 100")
	if len(rs.Rows) != 1 || rs.Rows[0][0] != Str("Super8") {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if rs.Columns[0] != "name" || rs.Columns[1] != "price" {
		t.Fatalf("columns = %v", rs.Columns)
	}
	rs = s.MustExec("SELECT * FROM motels")
	if len(rs.Rows) != 2 || len(rs.Columns) != 5 {
		t.Fatalf("star select = %v / %v", rs.Columns, rs.Rows)
	}
}

func TestWhereExpressions(t *testing.T) {
	s := NewStore()
	s.MustExec("CREATE TABLE t (a, b, c)")
	s.MustExec("INSERT INTO t VALUES (1, 2, 'x'), (3, 4, 'y'), (5, 6, 'x')")

	tests := []struct {
		where string
		want  int
	}{
		{"a = 1", 1},
		{"a != 1", 2},
		{"a + b >= 9", 1},
		{"a * 2 = b + 2", 1},
		{"a * 2 > b", 2},
		{"c = 'x' AND a < 5", 1},
		{"c = 'x' OR c = 'y'", 3},
		{"NOT (c = 'x')", 1},
		{"(a = 1 OR a = 3) AND b <= 4", 2},
		{"a - 1 = 0", 1},
		{"b / 2 = 1", 1},
	}
	for _, tt := range tests {
		rs, err := s.Exec("SELECT a FROM t WHERE " + tt.where)
		if err != nil {
			t.Fatalf("%s: %v", tt.where, err)
		}
		if len(rs.Rows) != tt.want {
			t.Errorf("%s: got %d rows, want %d", tt.where, len(rs.Rows), tt.want)
		}
	}
}

func TestNegativeNumbersAndBools(t *testing.T) {
	s := NewStore()
	s.MustExec("CREATE TABLE t (a, ok)")
	s.MustExec("INSERT INTO t VALUES (-5, TRUE), (5, FALSE)")
	rs := s.MustExec("SELECT a FROM t WHERE a < 0")
	if len(rs.Rows) != 1 || rs.Rows[0][0] != Num(-5) {
		t.Fatalf("rows = %v", rs.Rows)
	}
	rs = s.MustExec("SELECT a FROM t WHERE ok = TRUE")
	if len(rs.Rows) != 1 || rs.Rows[0][0] != Num(-5) {
		t.Fatalf("bool rows = %v", rs.Rows)
	}
	// Subtraction still works (binary minus).
	rs = s.MustExec("SELECT a FROM t WHERE a - 1 = 4")
	if len(rs.Rows) != 1 {
		t.Fatalf("subtraction rows = %v", rs.Rows)
	}
}

func TestJoinTwoTables(t *testing.T) {
	s := NewStore()
	s.MustExec("CREATE TABLE a (id, val)")
	s.MustExec("CREATE TABLE b (id, tag)")
	s.MustExec("INSERT INTO a VALUES (1, 10), (2, 20)")
	s.MustExec("INSERT INTO b VALUES (1, 'one'), (2, 'two'), (3, 'three')")
	rs := s.MustExec("SELECT a.val, b.tag FROM a, b WHERE a.id = b.id")
	if len(rs.Rows) != 2 {
		t.Fatalf("join rows = %v", rs.Rows)
	}
	// Ambiguous unqualified column errors.
	if _, err := s.Exec("SELECT id FROM a, b"); err == nil {
		t.Error("ambiguous column should fail")
	}
}

func TestDeleteUpdate(t *testing.T) {
	s := NewStore()
	s.MustExec("CREATE TABLE t (a, b)")
	s.MustExec("INSERT INTO t VALUES (1, 1), (2, 2), (3, 3)")
	rs := s.MustExec("DELETE FROM t WHERE a = 2")
	if rs.Rows[0][0] != Num(1) {
		t.Fatalf("delete count = %v", rs.Rows)
	}
	if got := s.MustExec("SELECT a FROM t"); len(got.Rows) != 2 {
		t.Fatalf("after delete = %v", got.Rows)
	}
	rs = s.MustExec("UPDATE t SET b = b * 10 WHERE a >= 1")
	if rs.Rows[0][0] != Num(2) {
		t.Fatalf("update count = %v", rs.Rows)
	}
	got := s.MustExec("SELECT b FROM t WHERE a = 3")
	if got.Rows[0][0] != Num(30) {
		t.Fatalf("updated value = %v", got.Rows)
	}
}

func TestIndexedSelectMatchesScan(t *testing.T) {
	s := NewStore()
	s.MustExec("CREATE TABLE t (id, v)")
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, r.Intn(100)))
	}
	// Baseline without index.
	baseline := map[string]int{}
	for _, q := range []string{"v = 50", "v <= 10", "v >= 90", "v > 42 AND v < 58", "id = 250"} {
		rs := s.MustExec("SELECT id FROM t WHERE " + q)
		baseline[q] = len(rs.Rows)
	}
	s.MustExec("CREATE INDEX ON t (v)")
	s.MustExec("CREATE INDEX ON t (id)")
	for q, want := range baseline {
		rs := s.MustExec("SELECT id FROM t WHERE " + q)
		if len(rs.Rows) != want {
			t.Errorf("%s: indexed %d rows, scan %d", q, len(rs.Rows), want)
		}
	}
	// Index survives deletes and updates.
	s.MustExec("DELETE FROM t WHERE v = 50")
	rs := s.MustExec("SELECT id FROM t WHERE v = 50")
	if len(rs.Rows) != 0 {
		t.Fatalf("after delete, v=50 rows = %d", len(rs.Rows))
	}
	s.MustExec("UPDATE t SET v = 50 WHERE v = 51")
	rs2 := s.MustExec("SELECT id FROM t WHERE v = 51")
	if len(rs2.Rows) != 0 {
		t.Fatalf("after update, v=51 rows = %d", len(rs2.Rows))
	}
}

func TestBTreeOrderedScan(t *testing.T) {
	idx := newBTreeIndex()
	r := rand.New(rand.NewSource(3))
	perm := r.Perm(2000)
	for rid, k := range perm {
		idx.insert(Num(float64(k)), rid)
	}
	// Full scan yields keys in order.
	var keys []float64
	idx.scanRange(nil, nil, func(rid int) bool {
		keys = append(keys, float64(perm[rid]))
		return true
	})
	if len(keys) != 2000 {
		t.Fatalf("scanned %d keys", len(keys))
	}
	if !sort.Float64sAreSorted(keys) {
		t.Fatal("scan not in key order")
	}
	// Range scan.
	var got []float64
	lo, hi := Num(100), Num(110)
	idx.scanRange(&lo, &hi, func(rid int) bool {
		got = append(got, float64(perm[rid]))
		return true
	})
	if len(got) != 11 {
		t.Fatalf("range scan = %v", got)
	}
	// Height is logarithmic.
	if h := idx.height(); h > 5 {
		t.Errorf("height = %d for 2000 keys", h)
	}
	// Early stop.
	count := 0
	idx.scanRange(nil, nil, func(int) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestBTreeDuplicatesAndRemove(t *testing.T) {
	idx := newBTreeIndex()
	for rid := 0; rid < 10; rid++ {
		idx.insert(Num(7), rid)
	}
	var rids []int
	k := Num(7)
	idx.scanRange(&k, &k, func(rid int) bool {
		rids = append(rids, rid)
		return true
	})
	if len(rids) != 10 {
		t.Fatalf("duplicates = %v", rids)
	}
	idx.remove(Num(7), 3)
	idx.remove(Num(7), 3) // double remove is a no-op
	rids = rids[:0]
	idx.scanRange(&k, &k, func(rid int) bool {
		rids = append(rids, rid)
		return true
	})
	if len(rids) != 9 {
		t.Fatalf("after remove = %v", rids)
	}
}

func TestSQLErrors(t *testing.T) {
	s := NewStore()
	s.MustExec("CREATE TABLE t (a)")
	bad := []string{
		"CREATE TABLE t (a)",              // duplicate table
		"CREATE TABLE u (a, a)",           // duplicate column
		"CREATE TABLE v ()",               // no columns
		"INSERT INTO missing VALUES (1)",  // no table
		"INSERT INTO t VALUES (1, 2)",     // arity
		"SELECT a FROM missing",           // no table
		"SELECT zzz FROM t",               // no column (validated statically)
		"SELECT a FROM t WHERE a = 'x' +", // syntax
		"UPDATE t SET zzz = 1",            // bad column
		"DROP SOMETHING",                  // unknown statement
		"SELECT a FROM t extra",           // trailing tokens
		"CREATE INDEX ON t (zzz)",         // bad index column
	}
	for _, q := range bad {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
	// Type errors and division by zero surface when a row is evaluated.
	s.MustExec("INSERT INTO t VALUES (1)")
	if _, err := s.Exec("SELECT a FROM t WHERE a / 0 = 1"); err == nil {
		t.Error("division by zero should fail")
	}
	if _, err := s.Exec("SELECT a FROM t WHERE a"); err == nil {
		t.Error("non-boolean WHERE should fail")
	}
}

func TestStoreTableManagement(t *testing.T) {
	s := NewStore()
	s.MustExec("CREATE TABLE b (x)")
	s.MustExec("CREATE TABLE a (x)")
	if got := s.Tables(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("Tables = %v", got)
	}
	if err := s.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("a"); err == nil {
		t.Error("double drop should fail")
	}
	if _, ok := s.Table("a"); ok {
		t.Error("dropped table still visible")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	s := NewStore()
	s.MustExec("CREATE TABLE t (name, score)")
	s.MustExec("INSERT INTO t VALUES ('c', 30), ('a', 10), ('d', 40), ('b', 20)")

	rs := s.MustExec("SELECT name FROM t ORDER BY score")
	var got []string
	for _, r := range rs.Rows {
		got = append(got, r[0].S)
	}
	if strings.Join(got, "") != "abcd" {
		t.Fatalf("ascending = %v", got)
	}
	rs = s.MustExec("SELECT name FROM t ORDER BY score DESC")
	got = got[:0]
	for _, r := range rs.Rows {
		got = append(got, r[0].S)
	}
	if strings.Join(got, "") != "dcba" {
		t.Fatalf("descending = %v", got)
	}
	rs = s.MustExec("SELECT name FROM t ORDER BY score DESC LIMIT 2")
	if len(rs.Rows) != 2 || rs.Rows[0][0].S != "d" || rs.Rows[1][0].S != "c" {
		t.Fatalf("top-2 = %v", rs.Rows)
	}
	rs = s.MustExec("SELECT name FROM t LIMIT 0")
	if len(rs.Rows) != 0 {
		t.Fatalf("limit 0 = %v", rs.Rows)
	}
	// ORDER BY expressions and ASC keyword.
	rs = s.MustExec("SELECT name FROM t ORDER BY 0 - score ASC LIMIT 1")
	if rs.Rows[0][0].S != "d" {
		t.Fatalf("expr order = %v", rs.Rows)
	}
	// ORDER BY on an indexed scan path.
	s.MustExec("CREATE INDEX ON t (score)")
	rs = s.MustExec("SELECT name FROM t WHERE score >= 20 ORDER BY score DESC LIMIT 2")
	if len(rs.Rows) != 2 || rs.Rows[0][0].S != "d" {
		t.Fatalf("indexed order = %v", rs.Rows)
	}
	// Errors.
	for _, q := range []string{
		"SELECT name FROM t ORDER score",
		"SELECT name FROM t ORDER BY zzz",
		"SELECT name FROM t LIMIT -1",
		"SELECT name FROM t LIMIT 1.5",
		"SELECT name FROM t LIMIT x",
	} {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
}

func TestDropTableStatement(t *testing.T) {
	s := NewStore()
	s.MustExec("CREATE TABLE t (a)")
	s.MustExec("DROP TABLE t")
	if _, ok := s.Table("t"); ok {
		t.Fatal("table should be gone")
	}
	if _, err := s.Exec("DROP TABLE t"); err == nil {
		t.Fatal("double drop should fail")
	}
	if _, err := s.Exec("DROP SOMETHING"); err == nil {
		t.Fatal("bad drop should fail")
	}
}
