// Package faults is a seeded, deterministic fault injector for the
// simulated mobile network of §5.2–5.3.  It replaces the bare per-delivery
// disconnection coin-flip of internal/dist with a Network that can drop,
// delay, duplicate and (through randomized delays) reorder messages,
// partition node groups, and crash and restart nodes on a scripted
// schedule.  Every run with the same seed and schedule produces the same
// fault sequence, so fault-tolerance tests are exactly reproducible.
//
// The model is tick-synchronous: senders enqueue messages at the current
// tick, Step advances the clock by one and delivers every message whose
// transit delay has elapsed.  Loss is modeled as a per-(destination, tick)
// outage — "due to disconnection, an object cannot continuously update its
// position" (§5.2) — computed by a pure hash of (seed, node, tick), so the
// same connectivity question always has the same answer regardless of how
// many messages probe it.  That property is what lets the legacy
// connectivity-function delivery paths and the reliable paths be compared
// under literally identical fault schedules.
package faults

import (
	"container/heap"
	"math/rand"
	"sync"

	"github.com/mostdb/most/internal/temporal"
)

// NodeID names one node of the simulated network (a mobile computer or the
// central server M).
type NodeID string

// Message is one delivered message.
type Message struct {
	ID      uint64 // unique per Send; duplicates share the ID
	From    NodeID
	To      NodeID
	SentAt  temporal.Tick
	Bytes   int
	Payload any
}

// Handler consumes messages delivered to a node.  Handlers run on the
// goroutine calling Step, with no network lock held, so they may call Send.
type Handler func(Message)

// Config sets the probabilistic fault model.  The zero value is a perfect
// network with a one-tick transit delay.
type Config struct {
	// Seed drives every probabilistic decision; same seed, same faults.
	Seed int64
	// DropRate is the probability that a destination is unreachable at a
	// given tick.  A message sent to an unreachable destination is lost.
	DropRate float64
	// DelayMin/DelayMax bound the uniform random transit delay in ticks.
	// Values below 1 are clamped to 1.  Unequal bounds make messages
	// overtake each other: reordering falls out of delay variance.
	DelayMin, DelayMax temporal.Tick
	// DupRate is the probability that a delivered message is delivered a
	// second time one tick later (e.g. a retransmitting link layer).
	DupRate float64
}

// Partition splits the nodes into two groups for [Start, End): messages
// between a node in GroupA and a node outside it are lost.  Traffic within
// a group is unaffected.
type Partition struct {
	Start, End temporal.Tick
	GroupA     []NodeID
}

// Crash takes a node down for [Down, Up): messages addressed to it are
// lost, and the node's own transmissions (guarded by Crashed) stop.  The
// node's volatile state is the application's concern — see most.WAL for
// what a database node must do to survive this.
type Crash struct {
	Node     NodeID
	Down, Up temporal.Tick
}

// Stats counts network traffic and injected faults.
type Stats struct {
	Sent       int // Send calls
	Bytes      int // payload bytes offered (per Send, not per copy)
	Delivered  int // handler invocations, duplicates included
	Dropped    int // losses: outage, partition, or crashed endpoint
	Duplicated int // extra copies injected
}

// envelope is one scheduled delivery.
type envelope struct {
	deliverAt temporal.Tick
	seq       uint64 // tie-break so delivery order is deterministic
	msg       Message
}

type envelopeHeap []envelope

func (h envelopeHeap) Len() int { return len(h) }
func (h envelopeHeap) Less(i, j int) bool {
	if h[i].deliverAt != h[j].deliverAt {
		return h[i].deliverAt < h[j].deliverAt
	}
	return h[i].seq < h[j].seq
}
func (h envelopeHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *envelopeHeap) Push(x any)    { *h = append(*h, x.(envelope)) }
func (h *envelopeHeap) Pop() any      { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h envelopeHeap) Peek() envelope { return h[0] }

// Network is the fault-injecting link layer.  Safe for concurrent use;
// determinism is guaranteed when Send/Step are driven from one goroutine
// (the simulators do so), because delivery order then depends only on the
// seed and the schedule.
type Network struct {
	mu       sync.Mutex
	cfg      Config
	rng      *rand.Rand
	now      temporal.Tick
	nextID   uint64
	nextSeq  uint64
	inflight envelopeHeap
	handlers map[NodeID]Handler
	parts    []partition
	crashes  []Crash
	stats    Stats
}

type partition struct {
	Partition
	inA map[NodeID]bool
}

// New returns a network at tick 0 under the given fault model.
func New(cfg Config) *Network {
	if cfg.DelayMin < 1 {
		cfg.DelayMin = 1
	}
	if cfg.DelayMax < cfg.DelayMin {
		cfg.DelayMax = cfg.DelayMin
	}
	return &Network{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		handlers: map[NodeID]Handler{},
	}
}

// Attach registers (or replaces) the handler receiving a node's messages.
func (n *Network) Attach(id NodeID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
}

// AddPartition schedules a scripted partition.
func (n *Network) AddPartition(p Partition) {
	inA := make(map[NodeID]bool, len(p.GroupA))
	for _, id := range p.GroupA {
		inA[id] = true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts = append(n.parts, partition{Partition: p, inA: inA})
}

// AddCrash schedules a scripted node crash and restart.
func (n *Network) AddCrash(c Crash) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashes = append(n.crashes, c)
}

// Now returns the network clock.
func (n *Network) Now() temporal.Tick {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// outage reports whether the destination is unreachable at tick t under the
// probabilistic loss model.  It is a pure function of (seed, id, t): every
// caller asking about the same node and tick gets the same answer.
func (n *Network) outage(id NodeID, t temporal.Tick) bool {
	if n.cfg.DropRate <= 0 {
		return false
	}
	return hash01(n.cfg.Seed, id, t) < n.cfg.DropRate
}

// hash01 maps (seed, id, t) to a uniform value in [0, 1) with an FNV-1a
// accumulation and an xorshift64* finalizer.
func hash01(seed int64, id NodeID, t temporal.Tick) float64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(uint64(seed))
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	mix(uint64(t))
	h ^= h >> 12
	h ^= h << 25
	h ^= h >> 27
	h *= 2685821657736338717
	return float64(h>>11) / float64(1<<53)
}

func (n *Network) crashedLocked(id NodeID, t temporal.Tick) bool {
	for _, c := range n.crashes {
		if c.Node == id && t >= c.Down && t < c.Up {
			return true
		}
	}
	return false
}

func (n *Network) partitionedLocked(a, b NodeID, t temporal.Tick) bool {
	for _, p := range n.parts {
		if t >= p.Start && t < p.End && p.inA[a] != p.inA[b] {
			return true
		}
	}
	return false
}

// Crashed reports whether the node is down at tick t per the scripted
// schedule.  Applications use it to suspend a crashed node's activity.
func (n *Network) Crashed(id NodeID, t temporal.Tick) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashedLocked(id, t)
}

// Connected reports whether a message from -> to sent at tick t would
// survive the scripted faults and the probabilistic outage.  It is
// deterministic per (from, to, t) and is exactly the predicate Send applies,
// which makes it the drop-in connectivity function for the legacy §5.2
// delivery paths: legacy and reliable delivery then face identical faults.
func (n *Network) Connected(from, to NodeID, t temporal.Tick) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.connectedLocked(from, to, t)
}

func (n *Network) connectedLocked(from, to NodeID, t temporal.Tick) bool {
	return !n.crashedLocked(from, t) &&
		!n.crashedLocked(to, t) &&
		!n.partitionedLocked(from, to, t) &&
		!n.outage(to, t)
}

// Send offers one message to the network at the current tick.  It reports
// whether the message was accepted for delivery; false means it was lost to
// an outage, partition, or crashed endpoint.  Accepted messages arrive
// after a randomized transit delay (and possibly twice).
func (n *Network) Send(from, to NodeID, bytes int, payload any) (uint64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextID++
	id := n.nextID
	n.stats.Sent++
	n.stats.Bytes += bytes
	m := Message{ID: id, From: from, To: to, SentAt: n.now, Bytes: bytes, Payload: payload}
	if !n.connectedLocked(from, to, n.now) {
		n.stats.Dropped++
		return id, false
	}
	delay := n.cfg.DelayMin
	if n.cfg.DelayMax > n.cfg.DelayMin {
		delay += temporal.Tick(n.rng.Int63n(int64(n.cfg.DelayMax - n.cfg.DelayMin + 1)))
	}
	n.push(envelope{deliverAt: n.now.Add(delay), msg: m})
	if n.cfg.DupRate > 0 && n.rng.Float64() < n.cfg.DupRate {
		n.stats.Duplicated++
		n.push(envelope{deliverAt: n.now.Add(delay + 1), msg: m})
	}
	return id, true
}

func (n *Network) push(e envelope) {
	n.nextSeq++
	e.seq = n.nextSeq
	heap.Push(&n.inflight, e)
}

// Step advances the clock by one tick and delivers every message due,
// in deterministic (deliverAt, send-sequence) order.  A message whose
// destination is crashed at its delivery tick is lost.
func (n *Network) Step() temporal.Tick {
	n.mu.Lock()
	n.now++
	now := n.now
	var due []envelope
	for len(n.inflight) > 0 && n.inflight.Peek().deliverAt <= now {
		due = append(due, heap.Pop(&n.inflight).(envelope))
	}
	type delivery struct {
		h Handler
		m Message
	}
	var run []delivery
	for _, e := range due {
		h := n.handlers[e.msg.To]
		if h == nil || n.crashedLocked(e.msg.To, now) {
			n.stats.Dropped++
			continue
		}
		n.stats.Delivered++
		run = append(run, delivery{h, e.msg})
	}
	n.mu.Unlock()
	for _, d := range run {
		d.h(d.m)
	}
	return now
}

// Run steps the network until tick t, invoking tick (if non-nil) after each
// step with the new clock value — the per-tick driver hook simulations use
// to transmit due work and pump retransmissions.
func (n *Network) Run(t temporal.Tick, tick func(temporal.Tick)) {
	for n.Now() < t {
		now := n.Step()
		if tick != nil {
			tick(now)
		}
	}
}
