// End-to-end tests through the public facade: what a downstream user of
// the library would write.
package mostdb_test

import (
	"strings"
	"testing"

	mostdb "github.com/mostdb/most"
)

// buildCity assembles a database with vehicles and motels through the
// public API only.
func buildCity(t *testing.T) (*mostdb.Database, *mostdb.Engine, mostdb.QueryOptions) {
	t.Helper()
	db := mostdb.NewDatabase()
	vehicles, err := mostdb.NewClass("Vehicles", true,
		mostdb.AttrDef{Name: "PLATE", Kind: mostdb.Static},
		mostdb.AttrDef{Name: "FUEL", Kind: mostdb.Dynamic},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DefineClass(vehicles); err != nil {
		t.Fatal(err)
	}
	add := func(id mostdb.ObjectID, plate string, p mostdb.Point, v mostdb.Vector, fuel float64) {
		o, err := mostdb.NewObject(id, vehicles)
		if err != nil {
			t.Fatal(err)
		}
		o, _ = o.WithStatic("PLATE", mostdb.Str(plate))
		o, err = o.WithPosition(mostdb.MovingFrom(p, v, db.Now()))
		if err != nil {
			t.Fatal(err)
		}
		var fuelAttr mostdb.DynamicAttr
		fuelAttr.Value = fuel
		fuelAttr.Function = mostdb.Linear(-0.5)
		o, err = o.WithDynamic("FUEL", fuelAttr)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	add("taxi", "RWW860", mostdb.Point{X: 0}, mostdb.Vector{X: 2}, 100)
	add("bus", "CTA1", mostdb.Point{X: 100}, mostdb.Vector{X: -1}, 300)
	add("parked", "ZZZ999", mostdb.Point{X: 35}, mostdb.Vector{}, 50)

	if err := mostdb.AddMotels(db, mostdb.MotelsSpec{N: 10, Region: mostdb.Rect(0, -5, 200, 5), Seed: 3}); err != nil {
		t.Fatal(err)
	}
	opts := mostdb.QueryOptions{
		Horizon: 200,
		Regions: map[string]mostdb.Polygon{
			"downtown": mostdb.RectPolygon(30, -10, 50, 10),
		},
	}
	return db, mostdb.NewEngine(db), opts
}

func TestFacadeFutureQuery(t *testing.T) {
	_, engine, opts := buildCity(t)
	q := mostdb.MustParseQuery(`
		RETRIEVE o FROM Vehicles o
		WHERE EVENTUALLY WITHIN 30 INSIDE(o, downtown)`)
	rel, err := engine.InstantaneousRelation(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	// taxi reaches x=30 at t=15 (within 30); parked is already inside;
	// bus reaches x in [30,50] at t in [50,70] (not within 30 of t=0).
	at0 := rel.At(0)
	if len(at0) != 2 {
		t.Fatalf("answers at 0 = %v", at0)
	}
}

func TestFacadeTentativeAnswer(t *testing.T) {
	db, engine, opts := buildCity(t)
	q := mostdb.MustParseQuery(`
		RETRIEVE o FROM Vehicles o
		WHERE EVENTUALLY WITHIN 30 INSIDE(o, downtown)`)
	rows, err := engine.Instantaneous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	var hasTaxi bool
	for _, r := range rows {
		if r[0].String() == "taxi" {
			hasTaxi = true
		}
	}
	if !hasTaxi {
		t.Fatal("taxi should be tentatively reported")
	}
	// Divert the taxi; the same query no longer reports it.
	if err := db.SetMotion("taxi", mostdb.Vector{Y: 5}); err != nil {
		t.Fatal(err)
	}
	rows, err = engine.Instantaneous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[0].String() == "taxi" {
			t.Fatal("diverted taxi still reported")
		}
	}
}

func TestFacadeContinuousAndTrigger(t *testing.T) {
	db, engine, opts := buildCity(t)
	q := mostdb.MustParseQuery(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, downtown)`)
	cq, err := engine.Continuous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	// taxi (x=2t) is inside downtown during [15,25].
	rows, err := cq.Current(20)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r[0].String() == "taxi" {
			found = true
		}
	}
	if !found {
		t.Fatal("taxi should be inside downtown at t=20")
	}
	var fired int
	tr, err := engine.NewTrigger(q, opts, func(rows []mostdb.Row) { fired += len(rows) })
	if err != nil {
		t.Fatal(err)
	}
	for tick := db.Now(); tick <= 30; tick = db.Tick() {
		tr.Poll(tick)
	}
	if fired == 0 {
		t.Fatal("trigger never fired")
	}
}

func TestFacadeSubAttributeQuery(t *testing.T) {
	_, engine, opts := buildCity(t)
	// FUEL drains at 0.5/tick from different levels: find low-fuel vehicles
	// within 100 ticks.
	q := mostdb.MustParseQuery(`
		RETRIEVE o FROM Vehicles o
		WHERE EVENTUALLY WITHIN 100 o.FUEL <= 10`)
	rel, err := engine.InstantaneousRelation(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	// taxi: 100 - 0.5t <= 10 at t=180 (not within 100 of t<=..); parked:
	// 50-0.5t <= 10 at t=80: qualifies at t=0.
	ans := rel.At(0)
	if len(ans) != 1 || ans[0][0].String() != "parked" {
		t.Fatalf("low fuel at 0 = %v", ans)
	}
}

func TestFacadeSnapshotRoundTrip(t *testing.T) {
	db, _, opts := buildCity(t)
	data, err := db.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	db2, err := mostdb.LoadSnapshotJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	engine2 := mostdb.NewEngine(db2)
	q := mostdb.MustParseQuery(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, downtown)`)
	rel, err := engine2.InstantaneousRelation(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Fatal("restored database answers nothing")
	}
}

func TestFacadeIndexes(t *testing.T) {
	ix := mostdb.NewAttrIndex(0, 100)
	var a mostdb.DynamicAttr
	a.Value = 0
	a.Function = mostdb.Linear(1)
	if err := ix.Insert("o", a); err != nil {
		t.Fatal(err)
	}
	if got := ix.InstantQuery(40, 60, 50); len(got) != 1 {
		t.Fatalf("rtree index = %v", got)
	}
	g := mostdb.NewGridIndex(0, 100, -200, 200, 16, 16)
	if err := g.Insert("o", a); err != nil {
		t.Fatal(err)
	}
	if got := g.InstantQuery(40, 60, 50); len(got) != 1 {
		t.Fatalf("grid index = %v", got)
	}
	mi := mostdb.NewMotionIndex(0, 100)
	if err := mi.Insert("m", mostdb.MovingFrom(mostdb.Point{}, mostdb.Vector{X: 1}, 0)); err != nil {
		t.Fatal(err)
	}
	hits := mi.InsidePolygonDuring(mostdb.RectPolygon(40, -5, 60, 5), 0, 100)
	if len(hits) != 1 {
		t.Fatalf("motion index = %v", hits)
	}
}

func TestFacadeSQLSystem(t *testing.T) {
	now := mostdb.Tick(0)
	sys := mostdb.NewSQLSystem(mostdb.NewStore(), func() mostdb.Tick { return now })
	if _, err := sys.CreateTable("cars", "id", []string{"color"}, []string{"X"}); err != nil {
		t.Fatal(err)
	}
	var x mostdb.DynamicAttr
	x.Value = 0
	x.Function = mostdb.Linear(3)
	err := sys.Insert("cars", mostdb.SQLStr("c1"),
		map[string]mostdb.SQLValue{"color": mostdb.SQLStr("red")},
		map[string]mostdb.DynamicAttr{"X": x})
	if err != nil {
		t.Fatal(err)
	}
	now = 10
	rs, err := sys.Query("SELECT id, X FROM cars WHERE X >= 25")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][1].String() != "30" {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestFacadeDistributed(t *testing.T) {
	sim := mostdb.NewSim(1)
	cls, err := mostdb.NewClass("V", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []mostdb.ObjectID{"a", "b", "c"} {
		o, _ := mostdb.NewObject(id, cls)
		o, _ = o.WithPosition(mostdb.MovingFrom(mostdb.Point{}, mostdb.Vector{X: 1}, 0))
		if _, err := sim.AddNode(o); err != nil {
			t.Fatal(err)
		}
	}
	sim.Regions["P"] = mostdb.RectPolygon(5, -5, 15, 5)
	q := mostdb.MustParseQuery(`RETRIEVE o FROM V o WHERE EVENTUALLY INSIDE(o, P)`)
	res, err := sim.RunObjectQuery("a", q, 50, mostdb.BroadcastQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 3 {
		t.Fatalf("answers = %d", res.Relation.Len())
	}
}

func TestFacadeQueryLanguageErrors(t *testing.T) {
	if _, err := mostdb.ParseQuery("garbage"); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := mostdb.ParseQuery("RETRIEVE o FROM V o WHERE"); err == nil {
		t.Error("truncated query should fail")
	}
	// Error messages carry position info.
	_, err := mostdb.ParseQuery("RETRIEVE o WHERE o.PRICE <= ")
	if err == nil || !strings.Contains(err.Error(), "line") {
		t.Errorf("error should carry position, got %v", err)
	}
}
