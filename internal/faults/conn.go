package faults

// This file extends the deterministic fault injector from the simulated
// tick network to real sockets: a net.Conn wrapper that injects the same
// class of faults — delays, connection kills mid-stream, and byte
// corruption — on live TCP connections.  It exists so the network layer
// (internal/client, internal/server, internal/wire) can be tested against
// misbehaving transports with reproducible schedules, the same way the
// simulated paths are tested against Network.

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// ConnScript scripts the faults injected into one wrapped connection.
// The zero value injects nothing.
type ConnScript struct {
	// Seed drives the corruption coin flips; same seed, same flips.
	Seed int64
	// ReadDelay / WriteDelay stall every Read / Write call.
	ReadDelay, WriteDelay time.Duration
	// CloseAfterWrites kills the connection (from the wrapped side) after
	// that many bytes have been written through it.  Zero means never.
	// The write that crosses the threshold still goes out — the peer sees
	// a request followed by a dead connection, the worst case for
	// exactly-once semantics.
	CloseAfterWrites int64
	// CloseAfterReads kills the connection after that many bytes have been
	// read through it.  Zero means never.
	CloseAfterReads int64
	// CorruptRate is the per-Read probability that one byte of the data
	// just read is flipped before the caller sees it.  Decoders must treat
	// the stream as hostile.
	CorruptRate float64
}

// FaultyConn wraps a net.Conn and applies a ConnScript to its traffic.
type FaultyConn struct {
	net.Conn
	script ConnScript

	mu      sync.Mutex
	rng     *rand.Rand
	read    int64
	written int64
	killed  bool

	// Stats, readable after the connection dies.
	Corrupted int64
	Kills     int64
}

// WrapConn applies script to conn.  The wrapper is safe for the usual
// net.Conn discipline (one reader, one writer, Close from anywhere).
func WrapConn(conn net.Conn, script ConnScript) *FaultyConn {
	return &FaultyConn{
		Conn:   conn,
		script: script,
		rng:    rand.New(rand.NewSource(script.Seed)),
	}
}

func (c *FaultyConn) Read(p []byte) (int, error) {
	if c.script.ReadDelay > 0 {
		time.Sleep(c.script.ReadDelay)
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.mu.Lock()
		c.read += int64(n)
		if c.script.CorruptRate > 0 && c.rng.Float64() < c.script.CorruptRate {
			i := c.rng.Intn(n)
			p[i] ^= 1 << uint(c.rng.Intn(8))
			c.Corrupted++
		}
		kill := c.script.CloseAfterReads > 0 && c.read >= c.script.CloseAfterReads && !c.killed
		if kill {
			c.killed = true
			c.Kills++
		}
		c.mu.Unlock()
		if kill {
			c.Conn.Close()
		}
	}
	return n, err
}

func (c *FaultyConn) Write(p []byte) (int, error) {
	if c.script.WriteDelay > 0 {
		time.Sleep(c.script.WriteDelay)
	}
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.mu.Lock()
		c.written += int64(n)
		kill := c.script.CloseAfterWrites > 0 && c.written >= c.script.CloseAfterWrites && !c.killed
		if kill {
			c.killed = true
			c.Kills++
		}
		c.mu.Unlock()
		if kill {
			c.Conn.Close()
		}
	}
	return n, err
}

// FaultyDialer returns a dial function (for client.WithDialer) that wraps
// every connection it makes with the next script from scripts; once the
// scripts run out, further connections get the last one.  It records the
// wrapped connections for post-mortem inspection.
type FaultyDialer struct {
	Scripts []ConnScript

	mu    sync.Mutex
	Conns []*FaultyConn
}

// Dial is the net dial function with fault wrapping applied.
func (d *FaultyDialer) Dial(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	script := ConnScript{}
	if len(d.Scripts) > 0 {
		i := len(d.Conns)
		if i >= len(d.Scripts) {
			i = len(d.Scripts) - 1
		}
		script = d.Scripts[i]
	}
	fc := WrapConn(conn, script)
	d.Conns = append(d.Conns, fc)
	return fc, nil
}

// DialCount reports how many connections the dialer has made.
func (d *FaultyDialer) DialCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.Conns)
}
