package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// This file wires a registry into the standard diagnostic endpoints:
//
//	/obs            the registry snapshot as indented JSON
//	/debug/vars     expvar (including any published registries)
//	/debug/pprof/   net/http/pprof profiles (cpu, heap, goroutine, ...)
//
// The commands accept `-http :6060` and serve this mux, so a long
// benchmark or simulation can be profiled and watched live.

// Handler returns an http.Handler serving the registry snapshot as
// indented JSON.  Works on a nil registry (serves an empty snapshot).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data := marshalIndent(r.Snapshot())
		w.Write(data)
	})
}

// NewServeMux builds the diagnostic mux for a registry.
func NewServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/obs", Handler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve publishes the registry under name in expvar and serves the
// diagnostic mux on addr in a background goroutine.  Intended for command
// wiring (`-http :6060`); errors from the listener are delivered on the
// returned channel.
func Serve(addr, name string, r *Registry) <-chan error {
	Publish(name, r)
	errc := make(chan error, 1)
	go func() {
		errc <- http.ListenAndServe(addr, NewServeMux(r))
	}()
	return errc
}

func marshalIndent(s Snapshot) []byte {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(data, '\n')
}

// Publish registers the registry as an expvar.Var under name, so it shows
// up in /debug/vars.  Safe to call more than once (later calls with an
// already-used name are ignored, matching expvar's publish-once model).
func Publish(name string, r *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r)
}
