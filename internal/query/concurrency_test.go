package query

import (
	"fmt"
	"sync"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
)

// TestConcurrentUpdatesAndQueries runs 8 updaters against 8 instantaneous
// queriers on one database, with a continuous and a persistent query
// registered so maintenance reevaluation races with both.  Run under -race
// this is the regression test for the snapshot/locking discipline; the
// final materialized answers must equal a fresh evaluation of the final
// state.
func TestConcurrentUpdatesAndQueries(t *testing.T) {
	db, cls := testDB(t)
	e := NewEngine(db)
	const nCars = 32
	for i := 0; i < nCars; i++ {
		addCar(t, db, cls, most.ObjectID(fmt.Sprintf("car-%02d", i)), geom.Point{X: float64(i)}, geom.Vector{X: 1})
	}
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	opts := Options{Horizon: 100, Regions: regionP(), Parallelism: -1}

	cq, err := e.Continuous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := e.Persistent(q, opts)
	if err != nil {
		t.Fatal(err)
	}

	const updaters, queriers, rounds = 8, 8, 20
	var wg sync.WaitGroup
	errCh := make(chan error, updaters+queriers)
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				id := most.ObjectID(fmt.Sprintf("car-%02d", (u*rounds+k)%nCars))
				if err := db.SetMotion(id, geom.Vector{X: float64((u+k)%5) - 2}); err != nil {
					errCh <- err
					return
				}
			}
		}(u)
	}
	for qi := 0; qi < queriers; qi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				if _, err := e.Instantaneous(q, opts); err != nil {
					errCh <- err
					return
				}
				if _, err := cq.Answer(); err != nil {
					errCh <- err
					return
				}
				if _, err := pq.Current(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// All updaters have returned, so no reevaluation is in flight (the
	// coalescing loop runs on an updater's notify path) and the installed
	// answer reflects the final state.
	fresh, err := e.InstantaneousRelation(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cq.Answer()
	if err != nil {
		t.Fatal(err)
	}
	now := db.Now()
	if fmt.Sprint(got.At(now)) != fmt.Sprint(fresh.At(now)) {
		t.Fatalf("Answer(CQ) diverged from fresh evaluation:\n got %v\nwant %v", got.At(now), fresh.At(now))
	}
}

// TestParallelismDeterministic checks the documented contract that the
// answer is identical at every Parallelism setting.
func TestParallelismDeterministic(t *testing.T) {
	db, cls := testDB(t)
	e := NewEngine(db)
	for i := 0; i < 50; i++ {
		addCar(t, db, cls, most.ObjectID(fmt.Sprintf("car-%02d", i)), geom.Point{X: float64(i) - 25}, geom.Vector{X: float64(i%3) - 1})
	}
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`)
	base := Options{Horizon: 100, Regions: regionP()}

	seq, err := e.InstantaneousRelation(q, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, -1} {
		o := base
		o.Parallelism = par
		got, err := e.InstantaneousRelation(q, o)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if fmt.Sprint(got.Answers()) != fmt.Sprint(seq.Answers()) {
			t.Fatalf("parallelism %d diverged:\n got %v\nwant %v", par, got.Answers(), seq.Answers())
		}
	}
}
