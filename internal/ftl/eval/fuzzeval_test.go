package eval

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/temporal"
)

// FuzzFTLEval parses arbitrary query text and, when it parses, evaluates
// it over a small fixed fleet, checking the properties the evaluator must
// hold for EVERY accepted input:
//
//   - no panic anywhere in parse → bind → evaluate;
//   - every answer tuple's satisfaction set is normalized (the appendix
//     invariant) and lies within the evaluation window;
//   - rewrite soundness: evaluating the normalized query yields the
//     identical relation;
//   - tri-state soundness: when the query's targets cover its domain-bound
//     free variables, each instantiation's satisfaction sets for f and
//     NOT f partition the window — no tick is both satisfied and
//     unsatisfied, and none is lost.
//
// Run longer with `make fuzzftl`.
func FuzzFTLEval(f *testing.F) {
	seeds := []string{
		`RETRIEVE o FROM V o WHERE TRUE`,
		`RETRIEVE o FROM V o WHERE Eventually INSIDE(o, P)`,
		`RETRIEVE o, n FROM V o, V n WHERE DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))`,
		`RETRIEVE o FROM V o WHERE [x <- SPEED(o.X.POSITION)] EVENTUALLY WITHIN 5 SPEED(o.X.POSITION) >= 2 * x`,
		`RETRIEVE o FROM V o WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P))`,
		`RETRIEVE o FROM V o WHERE NOT OUTSIDE(o, P) OR o.PRICE != 25`,
		`RETRIEVE o FROM V o WHERE time + 1 >= 2 IMPLIES NEXTTIME TRUE`,
		`RETRIEVE o FROM V o WHERE WITHIN_SPHERE(2.5, o, o, o)`,
		`RETRIEVE o FROM V o WHERE INSIDE(o, P) UNTIL OUTSIDE(o, Q)`,
		`RETRIEVE`,
		`[`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 256 {
			return
		}
		q, err := ftl.Parse(src)
		if err != nil {
			return
		}
		if len(q.Bindings) > 4 {
			return
		}
		rel, ctx := fuzzEval(q)
		if rel == nil {
			return // rejected by bind or eval: fine, as long as it didn't panic
		}
		w := ctx.Window()
		for _, tu := range rel.Tuples() {
			if !tu.Times.Normalized() {
				t.Fatalf("tuple %v: satisfaction set %v not normalized", tu.Vals, tu.Times)
			}
			if mn, ok := tu.Times.Min(); ok && mn < w.Start {
				t.Fatalf("tuple %v: satisfaction set %v starts before window %v", tu.Vals, tu.Times, w)
			}
			if mx, ok := tu.Times.Max(); ok && mx > w.End {
				t.Fatalf("tuple %v: satisfaction set %v ends after window %v", tu.Vals, tu.Times, w)
			}
		}

		// Rewrite soundness.
		nq := ftl.NormalizeQuery(*q)
		nrel, _ := fuzzEval(&nq)
		if nrel == nil {
			t.Fatalf("normalized query rejected but original accepted: %s", q.Where)
		}
		if !sameRelation(rel, nrel) {
			t.Fatalf("normalization changed the answer:\n  original:   %v\n  normalized: %v\n  formula: %s",
				relKeys(rel), relKeys(nrel), q.Where)
		}

		// Tri-state partition, when rows correspond to instantiations.
		if !targetsCoverFreeVars(q, ctx) {
			return
		}
		neg := *q
		neg.Where = ftl.Not{F: q.Where}
		negRel, _ := fuzzEval(&neg)
		if negRel == nil {
			return
		}
		pos := timesByKey(rel)
		for key, negTimes := range timesByKey(negRel) {
			posTimes := pos[key]
			if !posTimes.Intersect(negTimes).IsEmpty() {
				t.Fatalf("instantiation %s satisfies both f and NOT f at %v (f: %s)",
					key, posTimes.Intersect(negTimes), q.Where)
			}
			if !posTimes.Union(negTimes).Equal(temporal.NewSet(w)) {
				t.Fatalf("instantiation %s: f ∪ NOT f misses ticks of window %v (f: %s, got %v)",
					key, w, q.Where, posTimes.Union(negTimes))
			}
		}
	})
}

// fuzzFleet builds the small fixed database every fuzz execution evaluates
// against: deterministic, three vehicles, tiny horizon so pathological
// temporal nests stay cheap.
func fuzzFleet() *Context {
	ctx := randomScenario(rand.New(rand.NewSource(42)), 3)
	ctx.Now = 2
	ctx.Horizon = 8
	ctx.MaxAssignStates = 8
	ctx.BisectSamples = 32
	ctx.Domains = map[string][]Val{}
	return ctx
}

// fuzzEval binds and evaluates q over the fixed fleet, returning nil on
// any (legitimate) rejection.
func fuzzEval(q *ftl.Query) (*Relation, *Context) {
	ctx := fuzzFleet()
	ids := make([]most.ObjectID, 0, len(ctx.Objects))
	for id := range ctx.Objects {
		ids = append(ids, id)
	}
	idsOf := func(class string) []most.ObjectID {
		if class == "V" {
			return ids
		}
		return nil
	}
	if err := ctx.BindDomains(q, idsOf); err != nil {
		return nil, ctx
	}
	rel, err := EvalQuery(q, ctx)
	if err != nil {
		return nil, ctx
	}
	return rel, ctx
}

// targetsCoverFreeVars reports whether every domain-bound free variable of
// the WHERE clause is a target, so relation rows are full instantiations.
func targetsCoverFreeVars(q *ftl.Query, ctx *Context) bool {
	tset := map[string]bool{}
	for _, t := range q.Targets {
		tset[t] = true
	}
	for _, v := range ftl.FreeVars(q.Where) {
		if _, bound := ctx.Domains[v]; bound && !tset[v] {
			return false
		}
	}
	return true
}

func tupleKey(tu *Tuple) string {
	parts := make([]string, len(tu.Vals))
	for i, v := range tu.Vals {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

// timesByKey folds a relation into instantiation-key → satisfaction set.
func timesByKey(r *Relation) map[string]temporal.Set {
	out := map[string]temporal.Set{}
	for _, tu := range r.Tuples() {
		out[tupleKey(tu)] = out[tupleKey(tu)].Union(tu.Times)
	}
	return out
}

func relKeys(r *Relation) []string {
	var out []string
	for _, tu := range r.Tuples() {
		out = append(out, fmt.Sprintf("%s@%s", tupleKey(tu), tu.Times))
	}
	return out
}

func sameRelation(a, b *Relation) bool {
	ta, tb := timesByKey(a), timesByKey(b)
	if len(ta) != len(tb) {
		return false
	}
	for k, va := range ta {
		if vb, ok := tb[k]; !ok || !va.Equal(vb) {
			return false
		}
	}
	return true
}
