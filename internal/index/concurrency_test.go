package index

import (
	"fmt"
	"sync"
	"testing"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
)

// lineAttr builds a linear dynamic attribute v(t) = v0 + slope*(t - 0).
func lineAttr(v0, slope float64) motion.DynamicAttr {
	f, err := motion.NewFunc(motion.Piece{Start: 0, Slope: slope})
	if err != nil {
		panic(err)
	}
	return motion.DynamicAttr{Value: v0, UpdateTime: 0, Function: f}
}

// TestAttrIndexConcurrentProbes bulk-loads with InsertBatch while probe
// goroutines hammer the read paths; run under -race this exercises the
// RWMutex discipline, and the final state must match a sequential load.
func TestAttrIndexConcurrentProbes(t *testing.T) {
	const n = 500
	entries := make([]AttrEntry, n)
	for i := range entries {
		entries[i] = AttrEntry{
			ID:   most.ObjectID(fmt.Sprintf("obj-%04d", i)),
			Attr: lineAttr(float64(i%100), 0.5),
		}
	}

	ix := NewAttrIndex(0, 256)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				ix.InstantQuery(10, 40, 16)
				ix.Candidates(0, 200, 0, 255)
				ix.ContinuousQuery(25, 75, 0)
				_ = ix.Len()
				_ = ix.TreeHeight()
			}
		}()
	}
	if err := ix.InsertBatch(entries); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	close(done)
	wg.Wait()

	want := NewAttrIndex(0, 256)
	for _, e := range entries {
		if err := want.Insert(e.ID, e.Attr); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	got := ix.InstantQuery(10, 40, 16)
	exp := want.InstantQuery(10, 40, 16)
	if len(got) != len(exp) {
		t.Fatalf("InstantQuery after batch: got %d ids, want %d", len(got), len(exp))
	}
	for i := range got {
		if got[i] != exp[i] {
			t.Fatalf("InstantQuery mismatch at %d: %s vs %s", i, got[i], exp[i])
		}
	}
}

// TestMotionIndexConcurrentProbes does the same for the 3-d motion index.
func TestMotionIndexConcurrentProbes(t *testing.T) {
	const n = 300
	entries := make([]MotionEntry, n)
	for i := range entries {
		pos := motion.MovingFrom(geom.Point{X: float64(i % 50), Y: float64(i % 30)}, geom.Vector{X: 1, Y: 0.5}, 0)
		entries[i] = MotionEntry{ID: most.ObjectID(fmt.Sprintf("car-%04d", i)), Pos: pos}
	}

	ix := NewMotionIndex(0, 256)
	rect := geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 60, Y: 40}}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				ix.CandidatesInRect(rect, 0, 100)
				_ = ix.Len()
			}
		}()
	}
	if err := ix.InsertBatch(entries); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	close(done)
	wg.Wait()
	if ix.Len() != n {
		t.Fatalf("Len = %d, want %d", ix.Len(), n)
	}

	want := NewMotionIndex(0, 256)
	for _, e := range entries {
		if err := want.Insert(e.ID, e.Pos); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	got := ix.CandidatesInRect(rect, 0, 100)
	exp := want.CandidatesInRect(rect, 0, 100)
	if len(got) != len(exp) {
		t.Fatalf("CandidatesInRect after batch: got %d ids, want %d", len(got), len(exp))
	}
}

// TestGridIndexConcurrentProbes covers the grid variant.
func TestGridIndexConcurrentProbes(t *testing.T) {
	const n = 400
	entries := make([]AttrEntry, n)
	for i := range entries {
		entries[i] = AttrEntry{
			ID:   most.ObjectID(fmt.Sprintf("g-%04d", i)),
			Attr: lineAttr(float64(i%100), 0.25),
		}
	}
	g := NewGridIndex(0, 256, 0, 300, 32, 32)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				g.InstantQuery(10, 60, 32)
				g.ContinuousQuery(20, 80, 0)
				_ = g.Len()
			}
		}()
	}
	if err := g.InsertBatch(entries); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	close(done)
	wg.Wait()

	want := NewGridIndex(0, 256, 0, 300, 32, 32)
	for _, e := range entries {
		if err := want.Insert(e.ID, e.Attr); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	got := g.InstantQuery(10, 60, 32)
	exp := want.InstantQuery(10, 60, 32)
	if len(got) != len(exp) {
		t.Fatalf("InstantQuery after batch: got %d, want %d", len(got), len(exp))
	}
}
