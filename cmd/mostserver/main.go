// mostserver serves a moving-objects database over TCP using the MOST wire
// protocol: pipelined requests, batched motion updates, FTL queries,
// snapshot save/load, and server-push streaming of continuous-query answer
// changes.  It loads the same synthetic world as mostql (a vehicle fleet
// plus the MOTELS relation, with the named regions P, Q and downtown), so
// `mostql -connect` against a fresh mostserver behaves like a local mostql.
//
// Usage:
//
//	mostserver [-addr :7654] [-n 100] [-seed 1] [-horizon 500] [-http :6060] [-proto 2]
//
// -proto caps the wire protocol version the server offers during the Hello
// handshake (PROTOCOL.md): 1 forces JSON payloads for every session, the
// default offers the newest implemented version (currently 2, binary) and
// lets each client negotiate down.
//
// With -http set, /obs, /debug/vars and /debug/pprof are served on that
// address: connection and subscription gauges, per-opcode latency
// histograms, slow-consumer and dedup counters, plus the engine's and
// database's own instruments.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	mostdb "github.com/mostdb/most"
	"github.com/mostdb/most/internal/obs"
)

func main() {
	addr := flag.String("addr", ":7654", "TCP listen address")
	n := flag.Int("n", 100, "fleet size")
	seed := flag.Int64("seed", 1, "workload seed")
	horizon := flag.Int64("horizon", 500, "default query horizon (ticks)")
	httpAddr := flag.String("http", "", "serve /obs and /debug/pprof on this address (e.g. :6060)")
	proto := flag.Int("proto", 0, "highest wire protocol version to offer (1 = JSON only, 0 = newest)")
	flag.Parse()

	db, err := mostdb.Fleet(mostdb.FleetSpec{
		N:        *n,
		Region:   mostdb.Rect(0, 0, 1000, 1000),
		MaxSpeed: 3,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mostserver:", err)
		os.Exit(1)
	}
	if err := mostdb.AddMotels(db, mostdb.MotelsSpec{N: 30, Region: mostdb.Rect(0, 0, 1000, 1000), Seed: *seed}); err != nil {
		fmt.Fprintln(os.Stderr, "mostserver:", err)
		os.Exit(1)
	}
	eng := mostdb.NewEngine(db)

	reg := obs.New()
	db.Instrument(reg)
	eng.Instrument(reg)
	srv := mostdb.NewServer(db, eng, mostdb.ServerConfig{
		BaseOptions: mostdb.QueryOptions{
			Horizon: mostdb.Tick(*horizon),
			Regions: map[string]mostdb.Polygon{
				"P":        mostdb.RectPolygon(100, 100, 300, 300),
				"Q":        mostdb.RectPolygon(600, 600, 900, 900),
				"downtown": mostdb.RectPolygon(400, 400, 600, 600),
			},
		},
		Reg:         reg,
		Name:        "mostserver",
		MaxProtocol: *proto,
	})
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "mostserver:", err)
		os.Exit(1)
	}
	fmt.Printf("mostserver: %d vehicles + 30 motels on %s; clock at %d; horizon %d\n",
		*n, srv.Addr(), db.Now(), *horizon)
	if *httpAddr != "" {
		obs.Serve(*httpAddr, "mostserver", reg)
		fmt.Printf("mostserver: observability on http://%s/obs and /debug/pprof/\n", *httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "mostserver: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mostserver: shutdown:", err)
		os.Exit(1)
	}
}
