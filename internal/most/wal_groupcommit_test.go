package most

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/mostdb/most/internal/temporal"
)

// gatedWriter lets a test hold a WAL leader inside Write while followers
// stage behind it: each Write signals entered, then blocks until the test
// sends on proceed.
type gatedWriter struct {
	mu      sync.Mutex
	writes  [][]byte
	entered chan struct{}
	proceed chan error
}

func newGatedWriter() *gatedWriter {
	return &gatedWriter{entered: make(chan struct{}, 16), proceed: make(chan error, 16)}
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	g.entered <- struct{}{}
	err := <-g.proceed
	if err != nil {
		return 0, err
	}
	g.mu.Lock()
	g.writes = append(g.writes, append([]byte(nil), p...))
	g.mu.Unlock()
	return len(p), nil
}

// Appends that arrive while a leader is writing must coalesce into one
// follow-up batch: 1+N concurrent appends through a gated writer take
// exactly two Write calls, and the log still carries every record in
// commit (seq) order.
func TestWALGroupCommitCoalescesConcurrentAppends(t *testing.T) {
	const followers = 8
	g := newGatedWriter()
	w := NewWAL(g)

	leaderDone := make(chan struct{})
	go func() {
		w.appendClock(1, nil)
		close(leaderDone)
	}()
	<-g.entered // leader is inside Write with the first record

	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.appendClock(1, nil)
		}()
	}
	// Wait until every follower has staged its record behind the leader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		staged := bytes.Count(w.staging, []byte("\n"))
		w.mu.Unlock()
		if staged == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers staged", staged, followers)
		}
		time.Sleep(time.Millisecond)
	}

	g.proceed <- nil // release the leader's batch
	<-g.entered      // leader starts the coalesced follow-up batch
	g.proceed <- nil
	wg.Wait()
	<-leaderDone
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.writes) != 2 {
		t.Fatalf("got %d Write calls, want 2 (leader batch + coalesced batch)", len(g.writes))
	}
	if n := bytes.Count(g.writes[0], []byte("\n")); n != 1 {
		t.Fatalf("leader batch carries %d records, want 1", n)
	}
	if n := bytes.Count(g.writes[1], []byte("\n")); n != followers {
		t.Fatalf("coalesced batch carries %d records, want %d", n, followers)
	}
	// Group commit must preserve commit order: records appear in seq order.
	all := append(append([]byte(nil), g.writes[0]...), g.writes[1]...)
	var wantSeq uint64
	for _, line := range bytes.Split(bytes.TrimSuffix(all, []byte("\n")), []byte("\n")) {
		rec, err := parseWALLine(line)
		if err != nil {
			t.Fatalf("bad record %q: %v", line, err)
		}
		wantSeq++
		if rec.Seq != wantSeq {
			t.Fatalf("record out of order: seq %d at position %d", rec.Seq, wantSeq)
		}
	}
}

// A failed batch write must fail the leader and every staged follower —
// nobody deadlocks waiting for a flush that will never come — and the
// error is sticky.
func TestWALGroupCommitWriteErrorWakesFollowers(t *testing.T) {
	g := newGatedWriter()
	w := NewWAL(g)

	leaderDone := make(chan struct{})
	go func() {
		w.appendClock(1, nil)
		close(leaderDone)
	}()
	<-g.entered

	followerDone := make(chan struct{})
	go func() {
		w.appendClock(1, nil)
		close(followerDone)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		staged := bytes.Count(w.staging, []byte("\n"))
		w.mu.Unlock()
		if staged == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never staged")
		}
		time.Sleep(time.Millisecond)
	}

	g.proceed <- errors.New("disk gone")
	select {
	case <-leaderDone:
	case <-time.After(5 * time.Second):
		t.Fatal("leader did not return after write error")
	}
	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follower deadlocked on a flush that will never happen")
	}
	if w.Err() == nil {
		t.Fatal("write error not sticky")
	}
	// Subsequent appends are dropped, not deadlocked.
	w.appendClock(2, nil)
}

func BenchmarkWALAppendSerial(b *testing.B) {
	w := NewWAL(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.appendClock(temporal.Tick(1), nil)
	}
}

// BenchmarkWALAppendParallel measures the group-commit path under
// contention: without coalescing every append is one Write syscall;
// with it, concurrent appends share batches.
func BenchmarkWALAppendParallel(b *testing.B) {
	w := NewWAL(io.Discard)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w.appendClock(temporal.Tick(1), nil)
		}
	})
}
