//go:build !race

package wire

// raceEnabled reports whether the race detector instruments this build.
// TestIngestZeroAlloc skips under race: instrumentation allocates.
const raceEnabled = false
