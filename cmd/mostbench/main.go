// mostbench regenerates every experiment table (E1..E13): the paper's
// quantitative claims, measured on this implementation.  See DESIGN.md for
// the experiment index and EXPERIMENTS.md for claim-versus-measured.
//
// Usage:
//
//	mostbench [-quick] [-only E3,E7] [-parallel] [-delta] [-faults] [-chaos] [-obs] [-server] [-http :6060]
//
// With -parallel it instead runs the parallel-evaluation benchmark
// (sequential vs worker-pool at 1k/10k/100k objects) and writes the
// machine-readable results to BENCH_parallel.json.  With -delta it runs
// the continuous-query maintenance benchmark (per-object delta patches vs
// full reevaluation per update) and writes BENCH_delta.json.  With -faults it runs
// the fault-tolerance sweep (loss × partition × crashes; legacy vs reliable
// delivery, staleness marking, WAL recovery) and writes BENCH_faults.json.
// With -chaos it runs the live chaos scenarios (internal/chaos: real
// durable server over TCP under kill/restart, partitions and churn) and
// records recovery-time and failover-latency percentiles under the
// "chaos" key of BENCH_faults.json, preserving any simulated sweep
// already in the file.
// With -obs it measures the observability instrumentation overhead on the
// parallel benchmark and writes BENCH_obs.json, including a full metrics
// snapshot from an instrumented three-query-type scenario.  With -server
// it benchmarks the TCP network service (concurrent pipelining clients
// committing update batches over loopback) and writes BENCH_server.json.
//
// -http addr serves the observability endpoints for the duration of the
// run: /obs (metrics + trace snapshot), /debug/vars (expvar), and
// /debug/pprof/* (net/http/pprof profiling).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/mostdb/most/internal/experiments"
	"github.com/mostdb/most/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for a fast run")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E3,E7); empty runs all")
	parallel := flag.Bool("parallel", false, "benchmark parallel vs sequential evaluation and write BENCH_parallel.json")
	deltaBench := flag.Bool("delta", false, "benchmark delta maintenance vs full reevaluation and write BENCH_delta.json")
	faultsSweep := flag.Bool("faults", false, "run the fault-tolerance sweep and write BENCH_faults.json")
	chaosBench := flag.Bool("chaos", false, "run the live chaos scenarios and record recovery/failover latency under the chaos key of BENCH_faults.json")
	obsBench := flag.Bool("obs", false, "measure observability overhead and write BENCH_obs.json")
	serverBench := flag.Bool("server", false, "benchmark the TCP network service and write BENCH_server.json")
	httpAddr := flag.String("http", "", "serve /obs, /debug/vars and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()

	if *httpAddr != "" {
		reg := obs.New()
		obs.Serve(*httpAddr, "mostbench", reg)
		experiments.Instrument(reg)
		fmt.Fprintf(os.Stderr, "mostbench: observability endpoints on http://%s/obs and /debug/pprof/\n", *httpAddr)
	}

	if *serverBench {
		rep := experiments.ServerBench(*quick)
		fmt.Println(rep.Table().Render())
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_server.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_server.json")
		return
	}

	if *obsBench {
		rep := experiments.ObsBench(*quick)
		fmt.Println(rep.Table().Render())
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_obs.json")
		return
	}

	if *faultsSweep || *chaosBench {
		// The two fault benchmarks share BENCH_faults.json: -faults owns
		// the simulated sweep, -chaos owns the live-injection "chaos" key.
		// Running one preserves the other's half of an existing file.
		rep := &experiments.FaultsReport{}
		if prior, err := os.ReadFile("BENCH_faults.json"); err == nil {
			_ = json.Unmarshal(prior, rep)
		}
		if *faultsSweep {
			chaos := rep.Chaos
			rep = experiments.FaultsBench(*quick)
			rep.Chaos = chaos
			fmt.Println(rep.Table().Render())
		}
		if *chaosBench {
			chaos, err := experiments.ChaosBench(*quick)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mostbench: chaos scenario failed: %v\n", err)
				os.Exit(1)
			}
			rep.Chaos = chaos
			fmt.Println(chaos.Table().Render())
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_faults.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_faults.json")
		return
	}

	if *deltaBench {
		rep := experiments.DeltaBench(*quick)
		fmt.Println(rep.Table().Render())
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_delta.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_delta.json")
		return
	}

	if *parallel {
		rep := experiments.ParallelBench(*quick)
		fmt.Println(rep.Table().Render())
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mostbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_parallel.json")
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ran := 0
	for _, tbl := range experiments.All(*quick) {
		if len(want) > 0 && !want[tbl.ID] {
			continue
		}
		fmt.Println(tbl.Render())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "mostbench: no experiment matches %q\n", *only)
		os.Exit(1)
	}
}
