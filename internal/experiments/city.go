package experiments

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mostdb/most/internal/city"
	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/server"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
)

// CityQuerySLO is the service level observed for one instantaneous catalog
// template under full load: queriers cycle the catalog against the live
// server while updaters stream the city's motion schedule and every
// subscriber's continuous query is maintained inline.
type CityQuerySLO struct {
	Template string `json:"template"`
	Samples  int    `json:"samples"`
	P50Ns    int64  `json:"p50_ns"`
	P99Ns    int64  `json:"p99_ns"`
	P999Ns   int64  `json:"p999_ns"`
}

// CityCQLatency is the continuous-query notification latency: how long
// after a motion update commits (SetMotion acknowledged) every sentinel
// subscriber has seen the changed Answer(CQ) pushed to it.  Measured with
// a dedicated probe object whose flips deterministically toggle one row of
// a sentinel query, so each sample is one update → one notification.
type CityCQLatency struct {
	Subscribers int   `json:"subscribers"`
	Samples     int   `json:"samples"`
	Missed      int   `json:"missed"`
	P50Ns       int64 `json:"p50_ns"`
	P99Ns       int64 `json:"p99_ns"`
	P999Ns      int64 `json:"p999_ns"`
}

// CityReport is the payload mostbench -city writes to BENCH_city.json:
// the application-centric SLO view of the whole stack — city workload in,
// sustained update throughput, per-template query percentiles, CQ
// notification latency, and the server's overload counters out.
type CityReport struct {
	Quick           bool             `json:"quick"`
	Seed            int64            `json:"seed"`
	Objects         int              `json:"objects"`
	Cars            int              `json:"cars"`
	Events          int              `json:"events"`
	Subscribers     int              `json:"subscribers"`
	SubscriberConns int              `json:"subscriber_conns"`
	UpdaterConns    int              `json:"updater_conns"`
	QuerierConns    int              `json:"querier_conns"`
	TicksRun        int              `json:"ticks_run"`
	UpdatesApplied  int              `json:"updates_applied"`
	UpdatesPerSec   float64          `json:"updates_per_sec"`
	QueriesRun      int              `json:"queries_run"`
	GenerateMs      int64            `json:"generate_ms"`
	BuildMs         int64            `json:"build_ms"`
	SubscribeMs     int64            `json:"subscribe_ms"`
	RunMs           int64            `json:"run_ms"`
	Queries         []CityQuerySLO   `json:"queries"`
	CQ              CityCQLatency    `json:"cq_notify"`
	Server          map[string]int64 `json:"server_counters"`
	// Maintenance reports the engine's shared-plan counters: how many
	// distinct plans the subscriber population canonicalized to, how many
	// registrations joined an existing plan, and how dispatch classified
	// the replayed updates (delta patch, full reevaluation, spatial skip,
	// no-change suppression).
	Maintenance map[string]int64 `json:"maintenance_counters"`
}

// citySentinel is the probe rig for CQ notification latency.  The probe
// object lives in its own class, parked outside the city grid near a
// dedicated SENTINEL region; each tick the bench alternates its velocity
// toward / away from the region, deterministically adding / removing its
// row from the sentinel query's answer.  A separate class means probe
// flips never touch the car subscribers' maintenance and car updates never
// touch the sentinel's, so the samples isolate the notification path.
const (
	sentinelRegion = "SENTINEL"
	sentinelProbe  = "probe-000"
	sentinelWindow = temporal.Tick(5)
	sentinelSpeed  = 100.0
)

var probeClass = most.MustClass("Probes", true)

func sentinelSrc() string {
	return fmt.Sprintf("RETRIEVE p FROM Probes p WHERE EVENTUALLY WITHIN %d INSIDE(p, %s)",
		sentinelWindow, sentinelRegion)
}

// CityBench runs the city-scale application benchmark: a seeded road-network
// city (internal/city) is generated, its database served over loopback TCP,
// and three client populations drive it concurrently — subscribers holding
// continuous queries from the city's catalog, updaters streaming the city's
// motion schedule tick by tick, and queriers cycling the instantaneous
// catalog templates.  The full run serves >=100k objects to >=1000
// subscribers; quick mode shrinks everything for CI.  The motion replay is
// capped at updateCap committed updates so the full run finishes in minutes:
// per-update cost scales with the number of *distinct* continuous plans
// (subscribers sharing a plan key maintain one materialized answer), which
// is exactly the trade the report quantifies.
func CityBench(quick bool) (*CityReport, error) {
	spec := city.Spec{
		Seed: 2026, Cars: 100_000, Buses: 48,
		GridW: 48, GridH: 48, DistrictsX: 6, DistrictsY: 6, POIsPerDistrict: 4,
		Ticks: 10, Horizon: 20, TurnProb: 0.12, ReturnFrac: 0.2,
	}
	subscribers, subConns := 1000, 25
	updConns, qryConns := 16, 3
	sentinelSubs := 8
	// The ~1000 subscribers canonicalize to roughly a dozen distinct shared
	// plans, so a committed update maintains at most that many materialized
	// answers inline — and the spatial relevance filter skips the plans
	// whose guard regions the update's motion envelope provably misses.
	// The cap — spread evenly across ticks — keeps the full run to minutes
	// on a small machine while still measuring that exact trade.  The
	// measured window also stays inside every CQ's anchor validity
	// (horizon − query depth = 10 ticks for the deepest catalog template):
	// all subscribers register at the same instant, so letting the run
	// cross the validity edge triggers a synchronized full-reevaluation
	// storm that measures registration cost again rather than steady-state
	// maintenance (E5/E12 cover that cost).
	updateCap := 50_000
	if quick {
		spec.Cars, spec.Buses = 1500, 8
		spec.GridW, spec.GridH, spec.DistrictsX, spec.DistrictsY, spec.POIsPerDistrict = 12, 12, 2, 2, 2
		spec.Ticks = 18
		subscribers, subConns = 24, 4
		updConns, qryConns = 4, 2
		sentinelSubs = 2
		updateCap = 20_000
	}
	// Registration storms and contended queries run far past the client's
	// default 10s call timeout when a thousand initial evaluations share
	// the machine; the bench is not measuring call timeouts, so give every
	// client plenty of rope.
	callTimeout := client.WithTimeout(3 * time.Minute)

	rep := &CityReport{Quick: quick, Seed: spec.Seed, Cars: spec.Cars,
		Subscribers: subscribers, SubscriberConns: subConns,
		UpdaterConns: updConns, QuerierConns: qryConns}

	t0 := time.Now()
	c, err := city.Generate(spec)
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	rep.GenerateMs = time.Since(t0).Milliseconds()
	rep.Events = len(c.Events)

	t0 = time.Now()
	db, err := c.Database()
	if err != nil {
		return nil, fmt.Errorf("database: %w", err)
	}
	if err := insertProbe(db); err != nil {
		return nil, err
	}
	rep.Objects = c.Objects() + 1
	cat := c.Catalog()
	regions := make(map[string]geom.Polygon, len(cat.Regions)+1)
	for name, pg := range cat.Regions {
		regions[name] = pg
	}
	// The sentinel box sits outside the city grid (all city geometry has
	// non-negative coordinates), 100 units on a side.
	regions[sentinelRegion] = geom.RectPolygon(-1550, -1550, -1450, -1450)
	rep.BuildMs = time.Since(t0).Milliseconds()

	reg := obs.New()
	eng := query.NewEngine(db)
	srv := server.New(db, eng, server.Config{
		BaseOptions: query.Options{Horizon: spec.Horizon, Regions: regions},
		Reg:         reg,
		MaxInflight: 128,
	})
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	// ---- Subscribers: the catalog's continuous templates, weighted so the
	// mass of the population holds delta-friendly single-binding queries
	// (poi_approach, follow_bus) and only a handful hold the heavy
	// large-answer ones (range_district, corridor) — the shape a real alert
	// service has.
	assign := subscriberMix(cat, subscribers)
	t0 = time.Now()
	subClients := make([]*client.Client, subConns)
	subsPer := (len(assign) + subConns - 1) / subConns
	var (
		subWG  sync.WaitGroup
		subErr atomic.Value
	)
	for w := 0; w < subConns; w++ {
		lo := w * subsPer
		hi := lo + subsPer
		if hi > len(assign) {
			hi = len(assign)
		}
		if lo >= hi {
			break
		}
		w, lo, hi := w, lo, hi
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			cl, err := client.Dial(addr, client.WithClientID(fmt.Sprintf("city-sub-%d", w)), callTimeout)
			if err != nil {
				subErr.Store(fmt.Errorf("sub dial: %w", err))
				return
			}
			subClients[w] = cl
			for _, tpl := range assign[lo:hi] {
				if _, err := cl.Subscribe(tpl.Src, spec.Horizon); err != nil {
					subErr.Store(fmt.Errorf("subscribe %s: %w", tpl.Name, err))
					return
				}
			}
		}()
	}
	subWG.Wait()
	defer func() {
		for _, cl := range subClients {
			if cl != nil {
				cl.Close()
			}
		}
	}()
	if err, _ := subErr.Load().(error); err != nil {
		return nil, err
	}

	// Sentinel subscribers on their own connections.
	sentClient, err := client.Dial(addr, client.WithClientID("city-sentinel"), callTimeout)
	if err != nil {
		return nil, fmt.Errorf("sentinel dial: %w", err)
	}
	defer sentClient.Close()
	sentSubs := make([]*client.Subscription, sentinelSubs)
	sentSeqs := make([]uint64, sentinelSubs)
	for i := range sentSubs {
		sub, err := sentClient.Subscribe(sentinelSrc(), spec.Horizon)
		if err != nil {
			return nil, fmt.Errorf("sentinel subscribe: %w", err)
		}
		sentSubs[i] = sub
		_, sentSeqs[i], _ = sub.Answer()
	}
	rep.SubscribeMs = time.Since(t0).Milliseconds()

	// ---- Queriers: cycle the instantaneous catalog for the whole run.
	insts := cat.Instantaneous()
	var (
		qMu   sync.Mutex
		qLat  = map[string][]time.Duration{}
		qStop atomic.Bool
		qWG   sync.WaitGroup
		qErr  atomic.Value
	)
	for w := 0; w < qryConns; w++ {
		w := w
		qWG.Add(1)
		go func() {
			defer qWG.Done()
			cl, err := client.Dial(addr, client.WithClientID(fmt.Sprintf("city-query-%d", w)), callTimeout)
			if err != nil {
				qErr.Store(fmt.Errorf("querier dial: %w", err))
				return
			}
			defer cl.Close()
			for i := w; !qStop.Load(); i++ {
				tpl := insts[i%len(insts)]
				t0 := time.Now()
				if _, _, err := cl.Query(tpl.Src, spec.Horizon); err != nil {
					qErr.Store(fmt.Errorf("query %s: %w", tpl.Name, err))
					return
				}
				d := time.Since(t0)
				qMu.Lock()
				qLat[tpl.Name] = append(qLat[tpl.Name], d)
				qMu.Unlock()
			}
		}()
	}

	// ---- Updaters replay the motion schedule tick by tick, capped at
	// updateCap committed updates.
	coord, err := client.Dial(addr, client.WithClientID("city-coord"), callTimeout)
	if err != nil {
		return nil, fmt.Errorf("coord dial: %w", err)
	}
	defer coord.Close()
	updClients := make([]*client.Client, updConns)
	for w := range updClients {
		cl, err := client.Dial(addr, client.WithClientID(fmt.Sprintf("city-upd-%d", w)), callTimeout)
		if err != nil {
			return nil, fmt.Errorf("updater dial: %w", err)
		}
		defer cl.Close()
		updClients[w] = cl
	}

	byTick := make(map[temporal.Tick][]wire.UpdateOp)
	for _, e := range c.Events {
		byTick[e.Tick] = append(byTick[e.Tick], wire.UpdateOp{
			Op: wire.OpSetMotion, ID: string(e.Object), VX: e.Vector.X, VY: e.Vector.Y,
		})
	}

	perTick := updateCap / int(spec.Ticks)
	if perTick < 1 {
		perTick = 1
	}

	var cqLat []time.Duration
	runStart := time.Now()
	for tk := temporal.Tick(1); tk <= spec.Ticks && rep.UpdatesApplied < updateCap; tk++ {
		if _, err := coord.Advance(1); err != nil {
			return nil, fmt.Errorf("advance: %w", err)
		}
		ops := byTick[tk]
		// A city tick carries far more motion events than the capped replay
		// can afford; stride-sample so the applied subset spans the whole
		// event list instead of favoring low-index objects.
		if len(ops) > perTick {
			stride := len(ops) / perTick
			sampled := make([]wire.UpdateOp, 0, perTick)
			for i := 0; i < len(ops) && len(sampled) < perTick; i += stride {
				sampled = append(sampled, ops[i])
			}
			ops = sampled
		}
		var (
			updWG  sync.WaitGroup
			updErr atomic.Value
		)
		per := (len(ops) + updConns - 1) / updConns
		for w := 0; w < updConns; w++ {
			lo := w * per
			hi := lo + per
			if hi > len(ops) {
				hi = len(ops)
			}
			if lo >= hi {
				break
			}
			cl, part := updClients[w], ops[lo:hi]
			updWG.Add(1)
			go func() {
				defer updWG.Done()
				for len(part) > 0 {
					n := 64
					if n > len(part) {
						n = len(part)
					}
					if _, err := cl.UpdateBatch(part[:n]); err != nil {
						updErr.Store(fmt.Errorf("update batch: %w", err))
						return
					}
					part = part[n:]
				}
			}()
		}
		updWG.Wait()
		if err, _ := updErr.Load().(error); err != nil {
			return nil, err
		}
		rep.UpdatesApplied += len(ops)
		rep.TicksRun++

		// Sentinel flip: toward the region on odd ticks, away on even.
		vx := -sentinelSpeed
		if tk%2 == 0 {
			vx = sentinelSpeed
		}
		if err := coord.SetMotion(sentinelProbe, vx, 0); err != nil {
			return nil, fmt.Errorf("sentinel flip: %w", err)
		}
		acked := time.Now()
		for i, sub := range sentSubs {
			seq, ok := awaitSeq(sub, sentSeqs[i], 15*time.Second)
			if !ok {
				rep.CQ.Missed++
				continue
			}
			sentSeqs[i] = seq
			cqLat = append(cqLat, time.Since(acked))
		}
	}
	elapsed := time.Since(runStart)
	rep.RunMs = elapsed.Milliseconds()
	if elapsed > 0 {
		rep.UpdatesPerSec = float64(rep.UpdatesApplied) / elapsed.Seconds()
	}

	qStop.Store(true)
	qWG.Wait()
	if err, _ := qErr.Load().(error); err != nil {
		return nil, err
	}

	// ---- Roll up.
	names := make([]string, 0, len(qLat))
	for name := range qLat {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		lats := qLat[name]
		rep.QueriesRun += len(lats)
		rep.Queries = append(rep.Queries, CityQuerySLO{
			Template: name,
			Samples:  len(lats),
			P50Ns:    pctDur(lats, 0.50).Nanoseconds(),
			P99Ns:    pctDur(lats, 0.99).Nanoseconds(),
			P999Ns:   pctDur(lats, 0.999).Nanoseconds(),
		})
	}
	rep.CQ.Subscribers = sentinelSubs
	rep.CQ.Samples = len(cqLat)
	rep.CQ.P50Ns = pctDur(cqLat, 0.50).Nanoseconds()
	rep.CQ.P99Ns = pctDur(cqLat, 0.99).Nanoseconds()
	rep.CQ.P999Ns = pctDur(cqLat, 0.999).Nanoseconds()
	rep.Server = map[string]int64{
		"shed_requests":             reg.Counter("server.shed_requests").Value(),
		"slow_consumer_disconnects": reg.Counter("server.slow_consumer_disconnects").Value(),
		"request_errors":            reg.Counter("server.request_errors").Value(),
		"notifies":                  reg.Counter("server.notifies").Value(),
		"notifies_coalesced":        reg.Counter("server.notifies_coalesced").Value(),
		"conv_hits":                 reg.Counter("server.conv_hits").Value(),
		"conv_misses":               reg.Counter("server.conv_misses").Value(),
	}
	rep.Maintenance = map[string]int64{
		"shared_plans":       reg.Counter("query.continuous.shared_plans").Value(),
		"shared_hits":        reg.Counter("query.continuous.shared_hits").Value(),
		"skipped_irrelevant": reg.Counter("query.continuous.skipped_irrelevant").Value(),
		"delta":              reg.Counter("query.continuous.delta").Value(),
		"full":               reg.Counter("query.continuous.full").Value(),
		"fallback":           reg.Counter("query.continuous.fallback").Value(),
		"suppressed":         reg.Counter("query.continuous.suppressed").Value(),
	}
	return rep, nil
}

// insertProbe defines the probe class and parks the sentinel probe 350
// units east of the sentinel region's center, so a flip toward the region
// reaches it well inside the sentinel window and a flip away never does.
func insertProbe(db *most.Database) error {
	if err := db.DefineClass(probeClass); err != nil {
		return err
	}
	o, err := most.NewObject(sentinelProbe, probeClass)
	if err != nil {
		return err
	}
	if o, err = o.WithPosition(motion.MovingFrom(geom.Point{X: -1150, Y: -1500}, geom.Vector{}, 0)); err != nil {
		return err
	}
	return db.Insert(o)
}

// subscriberMix spreads n subscribers over the catalog's continuous
// templates: the heavy large-answer families (range_district, corridor)
// get two subscribers each, everyone else round-robins over the
// delta-friendly rest.
func subscriberMix(cat *city.Catalog, n int) []city.Template {
	conts := cat.Continuous()
	var heavy, cheap []city.Template
	for _, tpl := range conts {
		switch tpl.Family {
		case "range_district", "corridor":
			heavy = append(heavy, tpl)
		default:
			cheap = append(cheap, tpl)
		}
	}
	if len(cheap) == 0 {
		cheap = conts
	}
	out := make([]city.Template, 0, n)
	for _, tpl := range heavy {
		for k := 0; k < 2 && len(out) < n; k++ {
			out = append(out, tpl)
		}
	}
	for i := 0; len(out) < n; i++ {
		out = append(out, cheap[i%len(cheap)])
	}
	return out
}

// awaitSeq waits until the subscription's answer sequence advances past
// prev, returning the new sequence.
func awaitSeq(sub *client.Subscription, prev uint64, timeout time.Duration) (uint64, bool) {
	deadline := time.After(timeout)
	for {
		_, seq, err := sub.Answer()
		if err != nil {
			return prev, false
		}
		if seq > prev {
			return seq, true
		}
		select {
		case <-sub.Updates():
		case <-deadline:
			return prev, false
		}
	}
}

func pctDur(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(p*float64(len(s)-1))]
}

// Table renders the city SLO report for the terminal.
func (r *CityReport) Table() *Table {
	t := &Table{
		ID:      "CITY",
		Title:   fmt.Sprintf("city-scale application SLOs (%d objects, %d CQ subscribers, loopback TCP)", r.Objects, r.Subscribers),
		Claim:   "the full stack sustains city-scale motion updates while serving catalog queries and pushing CQ notifications at bounded latency",
		Columns: []string{"metric", "value", "p50", "p99", "p999"},
	}
	t.AddRow("updates/s (sustained)", fmt.Sprintf("%.0f", r.UpdatesPerSec), "-", "-", "-")
	t.AddRow("updates applied", itoa(r.UpdatesApplied), "-", "-", "-")
	t.AddRow("ticks run", itoa(r.TicksRun), "-", "-", "-")
	t.AddRow("queries run", itoa(r.QueriesRun), "-", "-", "-")
	t.AddRow(fmt.Sprintf("cq notify (%d sentinels, %d missed)", r.CQ.Subscribers, r.CQ.Missed),
		itoa(r.CQ.Samples)+" samples",
		ns(time.Duration(r.CQ.P50Ns)), ns(time.Duration(r.CQ.P99Ns)), ns(time.Duration(r.CQ.P999Ns)))
	for _, q := range r.Queries {
		t.AddRow("query "+q.Template, itoa(q.Samples)+" samples",
			ns(time.Duration(q.P50Ns)), ns(time.Duration(q.P99Ns)), ns(time.Duration(q.P999Ns)))
	}
	t.AddRow("server shed/slow/errors",
		fmt.Sprintf("%d/%d/%d", r.Server["shed_requests"], r.Server["slow_consumer_disconnects"], r.Server["request_errors"]),
		"-", "-", "-")
	t.AddRow("notifies (coalesced)",
		fmt.Sprintf("%d (%d)", r.Server["notifies"], r.Server["notifies_coalesced"]),
		"-", "-", "-")
	if m := r.Maintenance; m != nil {
		t.AddRow("shared plans (join hits)",
			fmt.Sprintf("%d (%d)", m["shared_plans"], m["shared_hits"]), "-", "-", "-")
		t.AddRow("maintenance delta/full/skipped/suppressed",
			fmt.Sprintf("%d/%d/%d/%d", m["delta"], m["full"], m["skipped_irrelevant"], m["suppressed"]),
			"-", "-", "-")
	}
	return t
}
